(* Tests of the paper's extension features: on-the-fly NSM switching (§3),
   zerocopy NSM and SmartNIC-offloaded CoreEngine (§7.8). *)

open Nkcore
module Types = Tcpstack.Types

let ip_vm = 10
let ip_client = 20

let fixed64 = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false }

let conns nsm =
  List.fold_left
    (fun acc (s : Tcpstack.Stack.stats) -> acc + s.Tcpstack.Stack.conns_established)
    0 (Nsm.stack_stats nsm)

let run_loadgen tb client_api ~addr ~total ~delay =
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:client_api
                {
                  Nkapps.Loadgen.server = addr;
                  proto = fixed64;
                  mode = Nkapps.Loadgen.Closed { concurrency = 16; total = Some total; duration = None };
                  warmup = 0.0;
                })));
  lg

let switch_nsm_on_the_fly () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm1 = Nsm.create_kernel hosta ~name:"nsm1" ~vcpus:1 () in
  let nsm2 = Nsm.create_kernel hosta ~name:"nsm2" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] ~nsms:[ nsm1 ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ ip_client ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (* Server on port 80 while attached to NSM1. *)
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server1: %s" (Types.err_to_string e));
  let lg1 = run_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 80) ~total:500 ~delay:1e-3 in
  (* After the first batch, the operator live-migrates the VM to NSM2 and
     the tenant opens a new listener. *)
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:0.5 (fun () ->
         Vm.attach_nsm vm nsm2;
         match
           Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
             (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm 81))
         with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "server2: %s" (Types.err_to_string e)));
  let lg2 = run_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 81) ~total:500 ~delay:0.6 in
  Testbed.run tb ~until:30.0;
  Alcotest.(check int) "port 80 served" 500
    (Nkapps.Loadgen.results (Option.get !lg1)).Nkapps.Loadgen.completed;
  Alcotest.(check int) "port 81 served" 500
    (Nkapps.Loadgen.results (Option.get !lg2)).Nkapps.Loadgen.completed;
  if conns nsm1 < 500 then Alcotest.failf "nsm1 should carry batch 1 (%d)" (conns nsm1);
  if conns nsm2 < 500 then Alcotest.failf "nsm2 should carry batch 2 (%d)" (conns nsm2)

let checksum s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) s;
  !h

(* Live handover with drain: a bulk transfer in flight when the operator
   re-homes the VM must complete on the source NSM byte-for-byte (the
   vswitch flow pin keeps its segments landing on the source stack even
   after the listener's endpoint moves), while connections opened after the
   handover land on the target. Once the bulk connection closes, the
   drained source retires at zero connections. *)
let drain_handover_preserves_streams () =
  (* A slow (1 Gb/s) fabric stretches the bulk transfer so the handover
     lands mid-stream. *)
  let tb = Testbed.create ~config:{ Testbed.Config.default with rate_gbps = 1.0 } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm1 = Nsm.create_kernel hosta ~name:"nsm1" ~vcpus:1 () in
  let nsm2 = Nsm.create_kernel hosta ~name:"nsm2" ~vcpus:1 () in
  let ctl =
    Nkctl.create hosta
      ~policy:{ Nkctl.Policy.default with max_nsms = 1 }
      ~spawn:(fun _ -> Alcotest.fail "unexpected NSM spawn")
      ()
  in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] ~nsms:[ nsm1 ] () in
  Nkctl.add_vm ctl vm ~home:nsm1;
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ ip_client ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let addr = Addr.make ip_vm 6379 in
  (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e));
  let big = String.init 300_000 (fun i -> Char.chr (33 + ((i * 7) mod 90))) in
  let got = ref None in
  let handover_time = ref nan in
  let bulk_done_time = ref nan in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client)
           addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.set conn ~key:"blob" ~value:big ~k:(fun r ->
                     (match r with
                     | Ok () -> ()
                     | Error e -> Alcotest.failf "set: %s" e);
                     Nkapps.Kvstore.Client.get conn ~key:"blob" ~k:(fun r ->
                         (match r with
                         | Ok v -> got := v
                         | Error e -> Alcotest.failf "get: %s" e);
                         bulk_done_time := Testbed.now tb;
                         Nkapps.Kvstore.Client.close conn)))));
  (* Handover mid-transfer. *)
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:2e-3 (fun () ->
         handover_time := Testbed.now tb;
         Nkctl.handover ctl ~vm ~target:nsm2));
  (* A connection opened after the handover must land on the target NSM. *)
  let post = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:0.1 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client)
           addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "post connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.set conn ~key:"after" ~value:"handover"
                   ~k:(fun _ ->
                     Nkapps.Kvstore.Client.get conn ~key:"after" ~k:(fun r ->
                         (match r with
                         | Ok v -> post := v
                         | Error e -> Alcotest.failf "post get: %s" e);
                         Nkapps.Kvstore.Client.close conn)))));
  Testbed.run tb ~until:30.0;
  (match !got with
  | Some v ->
      Alcotest.(check int) "bulk length intact across handover" (String.length big)
        (String.length v);
      Alcotest.(check int) "bulk content intact across handover" (checksum big)
        (checksum v)
  | None -> Alcotest.fail "bulk transfer never completed");
  if Float.is_nan !handover_time || !bulk_done_time <= !handover_time then
    Alcotest.failf "handover (%.4fs) should land mid-stream (bulk done %.4fs)"
      !handover_time !bulk_done_time;
  Alcotest.(check string) "post-handover service" "handover"
    (Option.value ~default:"" !post);
  (* The established bulk connection stayed on the source stack... *)
  if conns nsm1 < 1 then Alcotest.fail "bulk connection should have run on nsm1";
  (* ...and the post-handover connection went to the target. *)
  if conns nsm2 < 1 then Alcotest.fail "new connection should land on nsm2";
  (* With everything closed, the drained source retires on the next tick. *)
  Nkctl.tick ctl;
  Alcotest.(check int) "drain completed" 1 (Nkctl.stats ctl).Nkctl.drains_completed;
  Alcotest.(check int) "source left the pool" 1 (Nkctl.pool_size ctl);
  if not (Nsm.failed nsm1) then Alcotest.fail "retired source should be marked failed"

(* A detached NSM receives no new sockets; established routes are
   untouched. Outbound connections exercise round-robin placement (accepted
   server-side sockets always follow their listener's NSM, so the VM
   connects out here: each request is a fresh socket CoreEngine places). *)
let detach_nsm_stops_new_sockets () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm1 = Nsm.create_kernel hosta ~name:"nsm1" ~vcpus:1 () in
  let nsm2 = Nsm.create_kernel hosta ~name:"nsm2" ~vcpus:1 () in
  let vm =
    Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] ~nsms:[ nsm1; nsm2 ] ()
  in
  let server_vm =
    Vm.create_baseline hostb ~name:"server" ~vcpus:8 ~ips:[ ip_client ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api server_vm)
       (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_client 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  (* Batch 1: round-robin placement spreads the VM's sockets over both. *)
  let lg1 = run_loadgen tb (Vm.api vm) ~addr:(Addr.make ip_client 80) ~total:200 ~delay:1e-3 in
  Testbed.run tb ~until:5.0;
  Alcotest.(check int) "batch 1 served" 200
    (Nkapps.Loadgen.results (Option.get !lg1)).Nkapps.Loadgen.completed;
  let nsm2_before = conns nsm2 in
  if conns nsm1 = 0 || nsm2_before = 0 then
    Alcotest.fail "both NSMs should carry sockets before the detach";
  Vm.detach_nsm vm nsm2;
  let lg2 = run_loadgen tb (Vm.api vm) ~addr:(Addr.make ip_client 80) ~total:200 ~delay:0.0 in
  Testbed.run tb ~until:10.0;
  Alcotest.(check int) "batch 2 served" 200
    (Nkapps.Loadgen.results (Option.get !lg2)).Nkapps.Loadgen.completed;
  Alcotest.(check int) "detached NSM got no new sockets" nsm2_before (conns nsm2)

let nk_world ~costs =
  let tb = Testbed.create ~config:{ Testbed.Config.default with costs } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ ip_client ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (tb, hosta, vm, client)

let rps_run tb vm client ~total =
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = run_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 80) ~total ~delay:1e-3 in
  Testbed.run tb ~until:30.0;
  Nkapps.Loadgen.results (Option.get !lg)

let zerocopy_reduces_nsm_cycles () =
  let tput costs =
    let tb, hosta, vm, client = nk_world ~costs in
    ignore hosta;
    let sink =
      match
        Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api client)
          ~addr:(Addr.make ip_client 5001)
      with
      | Ok s -> s
      | Error e -> Alcotest.failf "sink: %s" (Types.err_to_string e)
    in
    ignore
      (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
           ignore
             (Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm)
                ~dst:(Addr.make ip_client 5001) ~streams:8 ~msg_size:16384 ~stop:0.5 ())));
    Testbed.run tb ~until:0.6;
    Nkapps.Stream.sink_throughput_gbps sink
  in
  let base = tput Nk_costs.default in
  let zc = tput (Nk_costs.zerocopy Nk_costs.default) in
  if zc < base *. 1.02 then
    Alcotest.failf "zerocopy should raise 1-core NSM send throughput: %.1f vs %.1f" zc base

let ce_offload_saves_ce_cycles () =
  let measure costs =
    let tb, hosta, vm, client = nk_world ~costs in
    let r = rps_run tb vm client ~total:2000 in
    Alcotest.(check int) "served" 2000 r.Nkapps.Loadgen.completed;
    Sim.Cpu.busy_cycles (Host.ce_core hosta)
  in
  let sw = measure Nk_costs.default in
  let hw = measure (Nk_costs.ce_offloaded Nk_costs.default) in
  if hw > sw /. 3.0 then
    Alcotest.failf "offload should slash CE cycles: %.0f vs %.0f" hw sw

let tests =
  [
    Alcotest.test_case "switch NSM on the fly" `Quick switch_nsm_on_the_fly;
    Alcotest.test_case "drain handover preserves streams" `Quick
      drain_handover_preserves_streams;
    Alcotest.test_case "detached NSM gets no new sockets" `Quick
      detach_nsm_stops_new_sockets;
    Alcotest.test_case "zerocopy NSM raises throughput" `Quick zerocopy_reduces_nsm_cycles;
    Alcotest.test_case "SmartNIC CE offload saves cycles" `Quick ce_offload_saves_ce_cycles;
  ]
