(* The Homa-style RPC stack behind the protocol-neutral Stack_ops boundary:
   message ordering and boundaries, receiver-driven SRPT grant pacing (and
   its determinism), export -> import -> export snapshot identity (the
   invariant protocol-aware live migration rides on), and a live TCP -> Homa
   protocol handover pumped op-by-op through the Nkctl control plane. *)

module E = Sim.Engine
module Types = Tcpstack.Types
module Stack_ops = Tcpstack.Stack_ops
module Homa = Homastack.Homa
module Hcb = Homastack.Hcb

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Types.err_to_string e)

(* ---- a minimal one-vswitch world of raw Homa stacks --------------------- *)

type world = {
  engine : E.t;
  vswitch : Vswitch.t;
  registry : Tcpstack.Conn_registry.t;
}

type node = { homa : Homa.t; ops : Stack_ops.t }

let mk_world () =
  let engine = E.create () in
  let nic = Nic.create engine ~name:"nic" () in
  let vswitch = Vswitch.create engine ~nic () in
  { engine; vswitch; registry = Tcpstack.Conn_registry.create () }

let add_node w ~name ?ip ?(cfg = Homa.default_config) () =
  let cores = Sim.Cpu.Set.create w.engine ~name ~n:1 () in
  let homa =
    Homa.create ~engine:w.engine ~name ~cores ~vswitch:w.vswitch ~registry:w.registry
      ~cfg ()
  in
  let ops = Homa.ops homa in
  (match ip with Some ip -> ops.Stack_ops.add_ip ip | None -> ());
  { homa; ops }

let connect w (c : node) ~dst =
  let r = ref None in
  c.ops.Stack_ops.connect ~dst ~k:(fun x -> r := Some x);
  E.run w.engine ~until:(E.now w.engine +. 0.01);
  match !r with
  | Some (Ok conn) -> conn
  | Some (Error e) -> Alcotest.failf "connect: %s" (Types.err_to_string e)
  | None -> Alcotest.fail "connect never completed"

(* ---- message semantics -------------------------------------------------- *)

(* Each send is one message: contents arrive in per-connection FIFO order
   and a recv never crosses a message boundary, whatever max allows. *)
let message_ordering () =
  let w = mk_world () in
  let srv = add_node w ~name:"srv" ~ip:1 () in
  let cli = add_node w ~name:"cli" ~ip:2 () in
  let accepted = ref None in
  ignore
    (ok "listen"
       (srv.ops.Stack_ops.new_listener ~addr:(Addr.make 1 80) ~backlog:0
          ~on_accept:(fun conn ~peer:_ -> accepted := Some conn)));
  let conn = connect w cli ~dst:(Addr.make 1 80) in
  (* sizes straddle the unscheduled allotment: the middle one needs grants *)
  let msgs = [ String.make 100 'a'; String.make 40_000 'b'; String.make 7 'c' ] in
  List.iter
    (fun m ->
      cli.ops.Stack_ops.send conn (Types.Data m) ~k:(fun r ->
          if ok "send" r <> String.length m then Alcotest.fail "partial message send"))
    msgs;
  E.run w.engine ~until:(E.now w.engine +. 1.0);
  let sconn = match !accepted with Some c -> c | None -> Alcotest.fail "no accept" in
  let got = ref [] in
  let again = ref false in
  while not !again do
    srv.ops.Stack_ops.recv sconn ~max:1_000_000 ~mode:`Copy ~k:(fun r ->
        match r with
        | Ok (Types.Data s) -> got := s :: !got
        | Ok (Types.Zeros n) -> Alcotest.failf "synthetic %d-byte read of real data" n
        | Error Types.Eagain -> again := true
        | Error e -> Alcotest.failf "recv: %s" (Types.err_to_string e))
  done;
  Alcotest.(check (list string)) "messages in order, boundaries intact" msgs
    (List.rev !got)

(* ---- receiver-driven grant pacing --------------------------------------- *)

(* A slowed-down pacer so the scheduled tail of a long message is still in
   flight when a short one arrives. *)
let slow_cfg =
  { Homa.default_config with Homa.grant_quantum = Segment.mss; grant_interval = 1e-5 }

(* Returns, for each message size, the virtual time its receiver saw it
   complete. The long message starts first; SRPT must still finish the
   short one first. *)
let run_srpt_scenario () =
  let w = mk_world () in
  let srv = add_node w ~name:"srv" ~ip:1 ~cfg:slow_cfg () in
  let cli = add_node w ~name:"cli" ~ip:2 ~cfg:slow_cfg () in
  let accepted = ref [] in
  ignore
    (ok "listen"
       (srv.ops.Stack_ops.new_listener ~addr:(Addr.make 1 80) ~backlog:0
          ~on_accept:(fun conn ~peer:_ -> accepted := conn :: !accepted)));
  let long = 400_000 and short = 30_000 in
  let c_long = connect w cli ~dst:(Addr.make 1 80) in
  let c_short = connect w cli ~dst:(Addr.make 1 80) in
  let t0 = E.now w.engine in
  cli.ops.Stack_ops.send c_long (Types.Zeros long) ~k:(fun r -> ignore (ok "send long" r));
  ignore
    (E.schedule w.engine ~delay:2e-4 (fun () ->
         cli.ops.Stack_ops.send c_short (Types.Zeros short) ~k:(fun r ->
             ignore (ok "send short" r))));
  (* Poll both accepted conns: a message only becomes readable when complete,
     so the first non-empty recv timestamps its completion. *)
  let done_at = ref [] in
  let rec poll () =
    List.iter
      (fun conn ->
        srv.ops.Stack_ops.recv conn ~max:1_000_000 ~mode:`Discard ~k:(fun r ->
            match r with
            | Ok (Types.Zeros n) when n > 0 ->
                done_at := (n, E.now w.engine -. t0) :: !done_at
            | Ok _ | Error Types.Eagain -> ()
            | Error e -> Alcotest.failf "poll recv: %s" (Types.err_to_string e)))
      !accepted;
    if List.length !done_at < 2 then ignore (E.schedule w.engine ~delay:2e-5 poll)
  in
  poll ();
  E.run w.engine ~until:(t0 +. 2.0);
  if List.length !done_at <> 2 then Alcotest.fail "not all messages completed";
  let time_of n =
    match List.assoc_opt n !done_at with
    | Some t -> t
    | None -> Alcotest.failf "no completion recorded for %d bytes" n
  in
  ((time_of short, time_of long), (Homa.stats srv.homa, Homa.stats cli.homa))

let srpt_preemption () =
  let (t_short, t_long), (srv_stats, _) = run_srpt_scenario () in
  if t_short >= t_long then
    Alcotest.failf "short message (%.6fs) should preempt the long one (%.6fs)" t_short
      t_long;
  if srv_stats.Homa.grants_tx = 0 then Alcotest.fail "receiver issued no grants";
  Alcotest.(check int) "both messages delivered" 2 srv_stats.Homa.msgs_rx

(* Same seed-free scenario twice: completion times, grant counts and every
   other counter must be bit-identical — the pacer has no hidden ordering. *)
let grant_pacing_deterministic () =
  let r1 = run_srpt_scenario () in
  let r2 = run_srpt_scenario () in
  if r1 <> r2 then Alcotest.fail "grant pacing diverged between identical runs"

(* ---- export / import round-trip ----------------------------------------- *)

(* [export (import (export h))] must be structurally identical to
   [export h] at an arbitrary mid-transfer instant, with traffic in both
   directions and a partially-read inbound queue. Mirrors the TCB
   round-trip property that TCP migration rides on. *)
let export_roundtrip =
  QCheck.Test.make ~name:"homa export->import->export identity" ~count:40
    QCheck.(triple (int_bound 200_000) (int_bound 200_000) (int_bound 100))
    (fun (n1, n2, cut) ->
      let w = mk_world () in
      let srv = add_node w ~name:"srv" ~ip:1 () in
      let cli = add_node w ~name:"cli" ~ip:2 () in
      (* The import target owns no IP: the imported connection's endpoint
         and flow pins alone must route its segments. *)
      let spare = add_node w ~name:"spare" () in
      let accepted = ref None in
      ignore
        (ok "listen"
           (srv.ops.Stack_ops.new_listener ~addr:(Addr.make 1 80) ~backlog:0
              ~on_accept:(fun conn ~peer:_ -> accepted := Some conn)));
      let conn = connect w cli ~dst:(Addr.make 1 80) in
      cli.ops.Stack_ops.send conn (Types.Zeros (n1 + 1)) ~k:(fun r ->
          ignore (ok "client send" r));
      (match !accepted with
      | Some sc ->
          srv.ops.Stack_ops.send sc (Types.Zeros (n2 + 1)) ~k:(fun r ->
              ignore (ok "server send" r))
      | None -> Alcotest.fail "no accept");
      (* Cut at a varying instant so the snapshot catches unscheduled bytes,
         granted-but-unsent tails, and incomplete inbound messages. *)
      E.run w.engine ~until:(E.now w.engine +. (float_of_int cut *. 2e-6));
      (* Partially drain the client's inbound side when something is ready. *)
      cli.ops.Stack_ops.recv conn ~max:(1 + (n2 / 2)) ~mode:`Discard ~k:(fun _ -> ());
      let e = ok "export" (cli.ops.Stack_ops.export_conn conn) in
      let s1 =
        match e.Stack_ops.e_payload with
        | Homa.Homa_state s -> s
        | _ -> Alcotest.fail "export is not a homa snapshot"
      in
      Alcotest.(check string) "protocol tag" Homa.proto e.Stack_ops.e_proto;
      let conn2 = ok "import" (spare.ops.Stack_ops.import_conn e) in
      let e2 = ok "re-export" (spare.ops.Stack_ops.export_conn conn2) in
      let s2 =
        match e2.Stack_ops.e_payload with
        | Homa.Homa_state s -> s
        | _ -> Alcotest.fail "re-export is not a homa snapshot"
      in
      s1 = s2)

(* ---- live protocol handover through the control plane -------------------- *)

let no_spawn _ = Alcotest.fail "unexpected NSM spawn"

(* A tenant served by a kernel-TCP NSM is switched live to a Homa NSM
   mid-load; the run is then pumped op-by-op (small engine steps
   interleaved with control ticks). The service must keep completing
   requests over the new protocol, the switch must be recorded, and the
   drained TCP NSM must retire. *)
let live_protocol_handover () =
  let open Nkcore in
  let tb = Testbed.create () in
  let host = Testbed.add_host tb ~name:"hostA" in
  let nsm_tcp = Nsm.create_kernel host ~name:"nsm-tcp" ~vcpus:1 () in
  let srv = Vm.create_nk host ~name:"srv" ~vcpus:1 ~ips:[ 10 ] ~nsms:[ nsm_tcp ] () in
  let cli = Vm.create_nk host ~name:"cli" ~vcpus:1 ~ips:[ 20 ] ~nsms:[ nsm_tcp ] () in
  let ctl =
    Nkctl.create host
      ~policy:
        { Nkctl.Policy.default with
          Nkctl.Policy.high_watermark = infinity;
          low_watermark = 0.0
        }
      ~spawn:no_spawn ()
  in
  Nkctl.manage ctl nsm_tcp;
  Nkctl.add_vm ctl srv ~home:nsm_tcp;
  Nkctl.add_vm ctl cli ~home:nsm_tcp;
  let proto = Nkapps.Proto.Fixed { request = 128; response = 512; keepalive = false } in
  let addr = Addr.make 10 80 in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api srv)
       (Nkapps.Epoll_server.config ~proto addr)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api cli)
                {
                  Nkapps.Loadgen.server = addr;
                  proto;
                  mode =
                    Nkapps.Loadgen.Closed
                      { concurrency = 2; total = None; duration = Some 2.0 };
                  warmup = 0.0;
                })));
  Testbed.run tb ~until:0.5;
  let before = (Nkapps.Loadgen.results (Option.get !lg)).Nkapps.Loadgen.completed in
  if before = 0 then Alcotest.fail "no requests served over TCP before the switch";
  let nsm_homa = Nsm.create_homa host ~name:"nsm-homa" ~vcpus:1 () in
  Alcotest.(check string) "homa NSM protocol id" "homa" (Nsm.proto nsm_homa);
  Nkctl.manage ctl nsm_homa;
  Nkctl.switch_protocol ctl ~vm:srv ~target:nsm_homa;
  Nkctl.switch_protocol ctl ~vm:cli ~target:nsm_homa;
  Alcotest.(check int) "both switches recorded" 2
    (Nkctl.stats ctl).Nkctl.protocol_switches;
  (* Pump op-by-op: 50 ms engine slices, one control tick between each. *)
  let t = ref 0.5 in
  while !t < 2.6 do
    t := !t +. 0.05;
    Testbed.run tb ~until:!t;
    Nkctl.tick ctl
  done;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  if r.Nkapps.Loadgen.completed <= before then
    Alcotest.failf "service stalled across the handover (%d before, %d after)" before
      r.Nkapps.Loadgen.completed;
  (* Handover windows may cost a handful of connects, never more. *)
  if r.Nkapps.Loadgen.errors * 10 > r.Nkapps.Loadgen.completed then
    Alcotest.failf "error rate too high across the switch: %d/%d"
      r.Nkapps.Loadgen.errors r.Nkapps.Loadgen.completed;
  let established =
    Nkmon.Registry.counter_value
      (Nkmon.counter tb.Testbed.mon ~component:"homastack" ~instance:"nsm-homa"
         ~name:"conns_established")
  in
  if established = 0 then Alcotest.fail "no connections established over the Homa NSM";
  if (Nkctl.stats ctl).Nkctl.drains_completed < 1 then
    Alcotest.fail "drained TCP NSM never retired";
  if not (Nsm.failed nsm_tcp) then Alcotest.fail "source NSM still active after drain"

let tests =
  [
    Alcotest.test_case "message ordering and boundaries" `Quick message_ordering;
    Alcotest.test_case "SRPT: short message preempts long" `Quick srpt_preemption;
    Alcotest.test_case "grant pacing is deterministic" `Quick grant_pacing_deterministic;
    QCheck_alcotest.to_alcotest export_roundtrip;
    Alcotest.test_case "live TCP->Homa handover (op-by-op)" `Quick
      live_protocol_handover;
  ]
