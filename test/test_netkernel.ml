(* End-to-end tests of the NetKernel path: GuestLib -> NQEs -> CoreEngine ->
   ServiceLib -> NSM stack -> wire, against real applications. *)

open Nkcore
module Types = Tcpstack.Types

let ip_vm = 10
let ip_vm2 = 11
let ip_client = 20

let fixed64 = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false }

(* Standard two-host NetKernel world: server host with one NSM and [vms] NK
   VMs (1 vCPU each), client host with an ideal-profile baseline VM. *)
let nk_world ?(nsm_kind = `Kernel) ?(nsm_cores = 1) ?(vm_ips = [ [ ip_vm ] ]) () =
  let tb = Testbed.create () in
  let server_host = Testbed.add_host tb ~name:"hostA" in
  let client_host = Testbed.add_host tb ~name:"hostB" in
  let nsm =
    match nsm_kind with
    | `Kernel -> Nsm.create_kernel server_host ~name:"nsm0" ~vcpus:nsm_cores ()
    | `Mtcp -> Nsm.create_mtcp server_host ~name:"nsm0" ~vcpus:nsm_cores ()
  in
  let vms =
    List.mapi
      (fun i ips ->
        Vm.create_nk server_host ~name:(Printf.sprintf "vm%d" i) ~vcpus:1 ~ips
          ~nsms:[ nsm ] ())
      vm_ips
  in
  let client =
    Vm.create_baseline client_host ~name:"client" ~vcpus:8
      ~ips:[ ip_client; ip_client + 1; ip_client + 2 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (tb, server_host, nsm, vms, client)

let kv_over_netkernel () =
  let tb, _host, _nsm, vms, client = nk_world () in
  let vm = List.hd vms in
  let addr = Addr.make ip_vm 6379 in
  (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv start: %s" (Types.err_to_string e));
  let got = ref None and deleted = ref None and miss = ref None in
  Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client) addr
    ~k:(fun r ->
      match r with
      | Error e -> Alcotest.failf "kv connect: %s" (Types.err_to_string e)
      | Ok conn ->
          Nkapps.Kvstore.Client.set conn ~key:"paper" ~value:"netkernel atc20" ~k:(fun r ->
              (match r with Ok () -> () | Error e -> Alcotest.failf "set: %s" e);
              Nkapps.Kvstore.Client.get conn ~key:"paper" ~k:(fun r ->
                  (match r with
                  | Ok v -> got := v
                  | Error e -> Alcotest.failf "get: %s" e);
                  Nkapps.Kvstore.Client.del conn ~key:"paper" ~k:(fun r ->
                      (match r with
                      | Ok b -> deleted := Some b
                      | Error e -> Alcotest.failf "del: %s" e);
                      Nkapps.Kvstore.Client.get conn ~key:"paper" ~k:(fun r ->
                          (match r with
                          | Ok v -> miss := Some v
                          | Error e -> Alcotest.failf "get2: %s" e);
                          Nkapps.Kvstore.Client.close conn)))));
  Testbed.run tb ~until:2.0;
  Alcotest.(check (option string)) "value through NetKernel" (Some "netkernel atc20") !got;
  Alcotest.(check (option bool)) "deleted" (Some true) !deleted;
  Alcotest.(check (option (option string))) "miss after delete" (Some None) !miss

(* Start the client a moment after the server so listeners are installed
   before the first SYN (as in any real deployment). *)
let delayed_loadgen tb client_api ~addr ~total ~concurrency =
  let lg = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:client_api
                {
                  Nkapps.Loadgen.server = addr;
                  proto = fixed64;
                  mode =
                    Nkapps.Loadgen.Closed { concurrency; total = Some total; duration = None };
                  warmup = 0.0;
                })));
  lg

let loadgen_against server_api client_api tb ~addr ~total ~concurrency =
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:server_api
       (Nkapps.Epoll_server.config ~proto:fixed64 addr)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server start: %s" (Types.err_to_string e));
  let lg = delayed_loadgen tb client_api ~addr ~total ~concurrency in
  Testbed.run tb ~until:30.0;
  Nkapps.Loadgen.results (Option.get !lg)

let rps_over_netkernel () =
  let tb, _host, _nsm, vms, client = nk_world () in
  let vm = List.hd vms in
  let r =
    loadgen_against (Vm.api vm) (Vm.api client) tb ~addr:(Addr.make ip_vm 80) ~total:2000
      ~concurrency:32
  in
  Alcotest.(check int) "all requests completed" 2000 r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "no errors" 0 r.Nkapps.Loadgen.errors;
  if r.Nkapps.Loadgen.rps < 10_000.0 then
    Alcotest.failf "suspiciously low NetKernel RPS: %.0f" r.Nkapps.Loadgen.rps

let rps_parity_with_baseline () =
  (* The paper's central performance claim: NetKernel ~= Baseline. *)
  let nk_rps =
    let tb, _host, _nsm, vms, client = nk_world () in
    let r =
      loadgen_against (Vm.api (List.hd vms)) (Vm.api client) tb ~addr:(Addr.make ip_vm 80)
        ~total:3000 ~concurrency:64
    in
    r.Nkapps.Loadgen.rps
  in
  let baseline_rps =
    let tb = Testbed.create () in
    let hosta = Testbed.add_host tb ~name:"hostA" in
    let hostb = Testbed.add_host tb ~name:"hostB" in
    let vm = Vm.create_baseline hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] () in
    let client =
      Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ ip_client ]
        ~profile:Sim.Cost_profile.ideal ()
    in
    let r =
      loadgen_against (Vm.api vm) (Vm.api client) tb ~addr:(Addr.make ip_vm 80) ~total:3000
        ~concurrency:64
    in
    r.Nkapps.Loadgen.rps
  in
  let ratio = nk_rps /. baseline_rps in
  if ratio < 0.7 || ratio > 1.4 then
    Alcotest.failf "NetKernel/Baseline RPS ratio out of range: %.0f vs %.0f (%.2fx)" nk_rps
      baseline_rps ratio

let mtcp_nsm_serves_unmodified_app () =
  let tb, _host, nsm, vms, client = nk_world ~nsm_kind:`Mtcp () in
  let r =
    loadgen_against (Vm.api (List.hd vms)) (Vm.api client) tb ~addr:(Addr.make ip_vm 80)
      ~total:2000 ~concurrency:32
  in
  Alcotest.(check int) "all requests completed" 2000 r.Nkapps.Loadgen.completed;
  Alcotest.(check int) "no errors" 0 r.Nkapps.Loadgen.errors;
  let conns =
    List.fold_left
      (fun acc (s : Tcpstack.Stack.stats) -> acc + s.Tcpstack.Stack.conns_established)
      0 (Nsm.stack_stats nsm)
  in
  if conns < 2000 then Alcotest.failf "mTCP shards accepted too few conns: %d" conns

let multiplexing_two_vms_one_nsm () =
  let tb, _host, nsm, vms, client = nk_world ~vm_ips:[ [ ip_vm ]; [ ip_vm2 ] ] () in
  ignore nsm;
  let vm1, vm2 = (List.nth vms 0, List.nth vms 1) in
  (* Two different "applications" multiplexed on one NSM. *)
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm1)
       (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server1: %s" (Types.err_to_string e));
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm2)
       (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm2 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server2: %s" (Types.err_to_string e));
  let lg1 = delayed_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 80) ~total:1000 ~concurrency:16 in
  let lg2 = delayed_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm2 80) ~total:1000 ~concurrency:16 in
  Testbed.run tb ~until:30.0;
  Alcotest.(check int) "vm1 requests" 1000
    (Nkapps.Loadgen.results (Option.get !lg1)).Nkapps.Loadgen.completed;
  Alcotest.(check int) "vm2 requests" 1000
    (Nkapps.Loadgen.results (Option.get !lg2)).Nkapps.Loadgen.completed

let multi_nsm_per_socket_spread () =
  (* One VM served by two NSMs; its two listeners land on different NSMs
     (paper §7.5). *)
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm1 = Nsm.create_kernel hosta ~name:"nsm1" ~vcpus:1 () in
  let nsm2 = Nsm.create_kernel hosta ~name:"nsm2" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ ip_vm ] ~nsms:[ nsm1; nsm2 ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ ip_client ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  List.iter
    (fun port ->
      match
        Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
          (Nkapps.Epoll_server.config ~proto:fixed64 (Addr.make ip_vm port))
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "server on %d: %s" port (Types.err_to_string e))
    [ 80; 81 ];
  let lg1 = delayed_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 80) ~total:500 ~concurrency:8 in
  let lg2 = delayed_loadgen tb (Vm.api client) ~addr:(Addr.make ip_vm 81) ~total:500 ~concurrency:8 in
  Testbed.run tb ~until:30.0;
  Alcotest.(check int) "port 80 done" 500
    (Nkapps.Loadgen.results (Option.get !lg1)).Nkapps.Loadgen.completed;
  Alcotest.(check int) "port 81 done" 500
    (Nkapps.Loadgen.results (Option.get !lg2)).Nkapps.Loadgen.completed;
  let conns nsm =
    List.fold_left
      (fun acc (s : Tcpstack.Stack.stats) -> acc + s.Tcpstack.Stack.conns_established)
      0 (Nsm.stack_stats nsm)
  in
  if conns nsm1 = 0 || conns nsm2 = 0 then
    Alcotest.failf "expected both NSMs to carry connections (%d / %d)" (conns nsm1)
      (conns nsm2)

let shmem_nsm_copies_data () =
  let tb = Testbed.create () in
  let host = Testbed.add_host tb ~name:"hostA" in
  let nsm = Nsm.create_shmem host ~name:"shmem" ~vcpus:2 () in
  let vm1 = Vm.create_nk host ~name:"vm1" ~vcpus:2 ~ips:[ ip_vm ] ~nsms:[ nsm ] () in
  let vm2 = Vm.create_nk host ~name:"vm2" ~vcpus:2 ~ips:[ ip_vm2 ] ~nsms:[ nsm ] () in
  let addr = Addr.make ip_vm2 9000 in
  (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm2) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv start: %s" (Types.err_to_string e));
  let got = ref None in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
  Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api vm1) addr
    ~k:(fun r ->
      match r with
      | Error e -> Alcotest.failf "connect over shmem: %s" (Types.err_to_string e)
      | Ok conn ->
          Nkapps.Kvstore.Client.set conn ~key:"k" ~value:"shared memory networking"
            ~k:(fun r ->
              (match r with Ok () -> () | Error e -> Alcotest.failf "set: %s" e);
              Nkapps.Kvstore.Client.get conn ~key:"k" ~k:(fun r ->
                  (match r with Ok v -> got := v | Error e -> Alcotest.failf "get: %s" e);
                  Nkapps.Kvstore.Client.close conn)))));
  Testbed.run tb ~until:2.0;
  Alcotest.(check (option string)) "value over shmem NSM" (Some "shared memory networking")
    !got;
  match Nsm.servicelib_stats nsm with
  | Some _ -> Alcotest.fail "shmem NSM should not have a ServiceLib"
  | None -> ()

let rate_limit_caps_throughput () =
  let tb, host, _nsm, vms, client = nk_world ~nsm_cores:2 () in
  let vm = List.hd vms in
  Coreengine.set_rate_limit (Host.coreengine host) ~vm_id:(Vm.vm_id vm)
    ~bytes_per_sec:(1e9 /. 8.0);
  let sink_addr = Addr.make ip_client 5001 in
  let sink =
    match
      Nkapps.Stream.sink ~engine:tb.Testbed.engine ~api:(Vm.api client) ~addr:sink_addr
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "sink: %s" (Types.err_to_string e)
  in
  let _senders =
    Nkapps.Stream.senders ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~dst:sink_addr
      ~streams:4 ~msg_size:65536 ~stop:1.0 ()
  in
  Testbed.run tb ~until:1.5;
  let gbps = Nkapps.Stream.sink_throughput_gbps sink in
  if gbps < 0.7 || gbps > 1.15 then
    Alcotest.failf "rate limit not enforced: measured %.2f Gbps (cap 1.0)" gbps

let tests =
  [
    Alcotest.test_case "kv store over NetKernel" `Quick kv_over_netkernel;
    Alcotest.test_case "loadgen RPS over NetKernel" `Quick rps_over_netkernel;
    Alcotest.test_case "RPS parity with baseline" `Quick rps_parity_with_baseline;
    Alcotest.test_case "mTCP NSM, unmodified app" `Quick mtcp_nsm_serves_unmodified_app;
    Alcotest.test_case "two VMs multiplexed on one NSM" `Quick multiplexing_two_vms_one_nsm;
    Alcotest.test_case "one VM spread over two NSMs" `Quick multi_nsm_per_socket_spread;
    Alcotest.test_case "shared-memory NSM moves real data" `Quick shmem_nsm_copies_data;
    Alcotest.test_case "CoreEngine rate limit" `Quick rate_limit_caps_throughput;
  ]
