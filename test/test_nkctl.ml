(* The Nkctl control plane: NSM deregistration, autoscaling against a
   time-varying load, and crash failover with data-integrity checks. *)

open Nkcore
module Types = Tcpstack.Types
module E = Sim.Engine

let checksum s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) s;
  !h

let no_spawn _ = Alcotest.fail "unexpected NSM spawn"

(* deregister_nsm is symmetric to deregister_vm: a departed NSM must leave
   no conn-table entries behind (its routes, including listener sockets,
   would otherwise leak and keep round-robin placement pointing at it). *)
let deregister_nsm_cleans_tables () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:1 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:4 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let addr = Addr.make 10 6379 in
  (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e));
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client)
           addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.set conn ~key:"k" ~value:"v" ~k:(fun _ ->
                     Nkapps.Kvstore.Client.close conn))));
  Testbed.run tb ~until:1.0;
  let ce = Host.coreengine hosta in
  let id = Nsm.id nsm in
  if Coreengine.nsm_conn_count ce ~nsm_id:id < 1 then
    Alcotest.fail "expected live routes on the NSM (at least the listener)";
  if Coreengine.conn_table_size ce < 1 then Alcotest.fail "expected conn-table entries";
  Coreengine.deregister_nsm ce ~nsm_id:id;
  Alcotest.(check int) "no routes left on departed NSM" 0
    (Coreengine.nsm_conn_count ce ~nsm_id:id);
  Alcotest.(check int) "conn table fully reclaimed" 0 (Coreengine.conn_table_size ce)

(* Autoscaling: a high-rate phase must push the pool above one NSM, the
   following trough must drain and retire the extras back to the minimum. *)
let autoscale_up_then_down () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let spawn i = Nsm.create_kernel hosta ~name:(Printf.sprintf "nsm%d" i) ~vcpus:1 () in
  let nsm0 = spawn 0 in
  let ctl =
    Nkctl.create hosta
      ~policy:
        {
          Nkctl.Policy.period = 0.2;
          high_watermark = 0.55;
          low_watermark = 0.2;
          min_nsms = 1;
          max_nsms = 3;
          cooldown = 0.5;
          ce_scale_watermark = infinity;
          max_ce_shards = 4;
        }
      ~spawn:(fun i -> spawn (i + 1))
      ()
  in
  Nkctl.manage ctl nsm0;
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm0 ] () in
  Nkctl.add_vm ctl vm ~home:nsm0;
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:8 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let proto = Nkapps.Proto.Fixed { request = 256; response = 4096; keepalive = false } in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto (Addr.make 10 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = Addr.make 10 80;
                  proto;
                  mode =
                    Nkapps.Loadgen.Open
                      {
                        (* spike for 2.5 s, then a near-idle trough *)
                        rate_at = (fun t -> if t < 2.5 then 60_000.0 else 200.0);
                        duration = 6.0;
                      };
                  warmup = 0.0;
                })));
  Nkctl.start ctl;
  Testbed.run tb ~until:6.5;
  Nkctl.stop ctl;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  let s = Nkctl.stats ctl in
  let peak_active =
    List.fold_left (fun acc x -> Int.max acc x.Nkctl.s_active) 0 (Nkctl.samples ctl)
  in
  let peak_util =
    List.fold_left
      (fun acc x -> Float.max acc x.Nkctl.s_utilization)
      0.0 (Nkctl.samples ctl)
  in
  if s.Nkctl.scale_ups < 1 then
    Alcotest.failf "spike should trigger a scale-up (peak util %.2f)" peak_util;
  if peak_active < 2 then Alcotest.failf "pool should grow at the spike (%d)" peak_active;
  if s.Nkctl.scale_downs < 1 then Alcotest.fail "trough should trigger a scale-down";
  if s.Nkctl.drains_completed < 1 then
    Alcotest.fail "drained NSM should retire at zero connections";
  Alcotest.(check int) "consolidated back to the minimum" 1
    (List.length (Nkctl.active_nsms ctl));
  if r.Nkapps.Loadgen.completed < 60_000 then
    Alcotest.failf "most requests should be served (%d)" r.Nkapps.Loadgen.completed;
  (* Listener re-homing windows may cost a handful of connects, never more. *)
  if r.Nkapps.Loadgen.errors * 100 > r.Nkapps.Loadgen.completed then
    Alcotest.failf "error rate too high: %d/%d" r.Nkapps.Loadgen.errors
      r.Nkapps.Loadgen.completed

(* Crash failover: one NSM dies under load. Sockets on the dead NSM get
   errors (never hangs), traffic on the surviving NSM is byte-identical,
   and after the controller re-places the VM its service resumes. *)
let crash_failover_integrity () =
  (* A slow (1 Gb/s) fabric stretches the bulk transfers so the crash lands
     mid-stream. *)
  let tb = Testbed.create ~config:{ Testbed.Config.default with rate_gbps = 1.0 } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm1 = Nsm.create_kernel hosta ~name:"nsm1" ~vcpus:1 () in
  let nsm2 = Nsm.create_kernel hosta ~name:"nsm2" ~vcpus:1 () in
  let ctl = Nkctl.create hosta ~spawn:no_spawn () in
  Nkctl.manage ctl nsm1;
  Nkctl.manage ctl nsm2;
  let vm1 = Vm.create_nk hosta ~name:"vm1" ~vcpus:1 ~ips:[ 10 ] ~nsms:[ nsm1 ] () in
  let vm2 = Vm.create_nk hosta ~name:"vm2" ~vcpus:1 ~ips:[ 11 ] ~nsms:[ nsm2 ] () in
  Nkctl.add_vm ctl vm1 ~home:nsm1;
  Nkctl.add_vm ctl vm2 ~home:nsm2;
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:4 ~ips:[ 20; 21 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let addr1 = Addr.make 10 6379 and addr2 = Addr.make 11 6379 in
  List.iter
    (fun (vm, addr) ->
      match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e))
    [ (vm1, addr1); (vm2, addr2) ];
  let big = String.init 300_000 (fun i -> Char.chr (33 + ((i * 7) mod 90))) in
  (* Survivor: bulk set+get through vm2/nsm2, spanning the crash. *)
  let survivor_got = ref None in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client)
           addr2
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "survivor connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.set conn ~key:"blob" ~value:big ~k:(fun r ->
                     (match r with
                     | Ok () -> ()
                     | Error e -> Alcotest.failf "survivor set: %s" e);
                     Nkapps.Kvstore.Client.get conn ~key:"blob" ~k:(fun r ->
                         (match r with
                         | Ok v -> survivor_got := v
                         | Error e -> Alcotest.failf "survivor get: %s" e);
                         Nkapps.Kvstore.Client.close conn)))));
  (* Victim: a long transfer through vm1/nsm1; the crash lands mid-stream,
     so this request must fail fast, not hang. *)
  let victim_outcome = ref `Pending in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client)
           addr1
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "victim connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.set conn ~key:"blob" ~value:big ~k:(fun r ->
                     (match r with
                     | Ok () -> victim_outcome := `Completed
                     | Error _ -> victim_outcome := `Errored);
                     Nkapps.Kvstore.Client.close conn))));
  ignore (E.schedule tb.Testbed.engine ~delay:2e-3 (fun () -> Nsm.fail nsm1));
  (* The controller notices the crash on its next tick and re-places vm1
     (onto nsm2, the only survivor), re-homing its listener; a later client
     request against vm1 must then succeed again. *)
  ignore (E.schedule tb.Testbed.engine ~delay:0.1 (fun () -> Nkctl.tick ctl));
  let recovered = ref None in
  ignore
    (E.schedule tb.Testbed.engine ~delay:0.5 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client)
           addr1
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "recovery connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.set conn ~key:"post" ~value:"failover"
                   ~k:(fun r ->
                     (match r with
                     | Ok () -> ()
                     | Error e -> Alcotest.failf "recovery set: %s" e);
                     Nkapps.Kvstore.Client.get conn ~key:"post" ~k:(fun r ->
                         (match r with
                         | Ok v -> recovered := v
                         | Error e -> Alcotest.failf "recovery get: %s" e);
                         Nkapps.Kvstore.Client.close conn)))));
  Testbed.run tb ~until:5.0;
  (match !victim_outcome with
  | `Errored -> ()
  | `Completed -> Alcotest.fail "victim transfer should have died with the NSM"
  | `Pending -> Alcotest.fail "victim socket hung instead of erroring");
  (match !survivor_got with
  | Some v ->
      Alcotest.(check int) "survivor length intact" (String.length big)
        (String.length v);
      Alcotest.(check int) "survivor content intact" (checksum big) (checksum v)
  | None -> Alcotest.fail "survivor transfer never completed");
  (match !recovered with
  | Some v -> Alcotest.(check string) "service resumed after failover" "failover" v
  | None -> Alcotest.fail "vm1 never recovered after failover");
  Alcotest.(check int) "one failover recorded" 1 (Nkctl.stats ctl).Nkctl.failovers;
  Alcotest.(check int) "dead NSM left the pool" 1 (Nkctl.pool_size ctl)

(* CE autoscaling: with a finite ce_scale_watermark, load on the switching
   path must make the policy loop add CoreEngine shards — and stop at the
   max_ce_shards cap regardless of how hot the shards stay. *)
let ce_autoscale_under_load () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:2 () in
  let ctl =
    Nkctl.create hosta
      ~policy:
        {
          Nkctl.Policy.period = 0.1;
          (* NSM watermarks out of reach: this test isolates the CE path. *)
          high_watermark = 2.0;
          low_watermark = 0.0;
          min_nsms = 1;
          max_nsms = 1;
          cooldown = 0.2;
          (* Any sustained switching activity crosses this. *)
          ce_scale_watermark = 0.01;
          max_ce_shards = 2;
        }
      ~spawn:no_spawn ()
  in
  Nkctl.manage ctl nsm;
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  Nkctl.add_vm ctl vm ~home:nsm;
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:4 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let proto = Nkapps.Proto.Fixed { request = 64; response = 64; keepalive = false } in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto (Addr.make 10 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  let lg = ref None in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         lg :=
           Some
             (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
                {
                  Nkapps.Loadgen.server = Addr.make 10 80;
                  proto;
                  mode =
                    Nkapps.Loadgen.Closed
                      { concurrency = 32; total = None; duration = Some 2.0 };
                  warmup = 0.0;
                })));
  Alcotest.(check int) "starts with one shard" 1
    (Coreengine.n_shards (Host.coreengine hosta));
  Nkctl.start ctl;
  Testbed.run tb ~until:2.5;
  Nkctl.stop ctl;
  let s = Nkctl.stats ctl in
  Alcotest.(check int) "grew to the shard cap and stopped" 2
    (Coreengine.n_shards (Host.coreengine hosta));
  Alcotest.(check int) "exactly one CE scale-out recorded" 1 s.Nkctl.ce_scale_outs;
  let peak_ce =
    List.fold_left
      (fun acc x -> Float.max acc x.Nkctl.s_ce_utilization)
      0.0 (Nkctl.samples ctl)
  in
  if peak_ce <= 0.01 then
    Alcotest.failf "sampled CE utilization should exceed the watermark (%.4f)" peak_ce;
  Alcotest.(check int) "no NSM scale-ups" 0 s.Nkctl.scale_ups;
  let r = Nkapps.Loadgen.results (Option.get !lg) in
  if r.Nkapps.Loadgen.completed = 0 then Alcotest.fail "no requests completed";
  Alcotest.(check int) "no errors across the scale-out" 0 r.Nkapps.Loadgen.errors

(* Regression: handover (or manage/add_vm) targeting a retired or crashed
   NSM used to re-add the corpse to the pool and silently pin the VM's
   flows on a module CoreEngine no longer polls. It must raise instead,
   leaving the VM's home and the pool untouched. *)
let handover_to_dead_nsm_rejected () =
  let tb = Testbed.create () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let nsm1 = Nsm.create_kernel hosta ~name:"nsm1" ~vcpus:1 () in
  let nsm2 = Nsm.create_kernel hosta ~name:"nsm2" ~vcpus:1 () in
  let nsm3 = Nsm.create_kernel hosta ~name:"nsm3" ~vcpus:1 () in
  let ctl = Nkctl.create hosta ~spawn:no_spawn () in
  Nkctl.manage ctl nsm1;
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:1 ~ips:[ 10 ] ~nsms:[ nsm1 ] () in
  Nkctl.add_vm ctl vm ~home:nsm1;
  Nsm.retire nsm2;
  Nsm.fail nsm3;
  let expect_invalid name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "handover to retired" (fun () ->
      Nkctl.handover ctl ~vm ~target:nsm2);
  expect_invalid "handover to crashed" (fun () ->
      Nkctl.handover ctl ~vm ~target:nsm3);
  expect_invalid "manage retired" (fun () -> Nkctl.manage ctl nsm2);
  expect_invalid "add_vm homed on crashed" (fun () ->
      Nkctl.add_vm ctl vm ~home:nsm3);
  Alcotest.(check int) "dead NSMs never entered the pool" 1 (Nkctl.pool_size ctl);
  Alcotest.(check int) "live NSM still active" 1
    (List.length (Nkctl.active_nsms ctl));
  Alcotest.(check int) "no handover recorded" 0 (Nkctl.stats ctl).Nkctl.handovers

let tests =
  [
    Alcotest.test_case "deregister_nsm reclaims conn-table routes" `Quick
      deregister_nsm_cleans_tables;
    Alcotest.test_case "handover/manage reject a retired or crashed NSM" `Quick
      handover_to_dead_nsm_rejected;
    Alcotest.test_case "autoscale up at spike, down at trough" `Quick
      autoscale_up_then_down;
    Alcotest.test_case "crash failover: errors not hangs, data intact" `Quick
      crash_failover_integrity;
    Alcotest.test_case "CE autoscale: watermark adds shards up to the cap" `Quick
      ce_autoscale_under_load;
  ]
