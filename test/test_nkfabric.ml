(* Nkfabric: cluster placement, live cross-host NSM migration with a
   persistent connection riding through it, listener handover to the
   destination host, and the relay unwind when an NSM migrates back home. *)

open Nkcore
module Types = Tcpstack.Types
module E = Sim.Engine

let mk_cluster ?policy () =
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed = 11 } () in
  let cluster = Nkfabric.create ?policy tb in
  let nodea = Nkfabric.add_node cluster ~name:"nodeA" in
  let nodeb = Nkfabric.add_node cluster ~name:"nodeB" in
  let nsma = Nsm.create_kernel (Nkfabric.node_host nodea) ~name:"nsmA" ~vcpus:1 () in
  let nsmb = Nsm.create_kernel (Nkfabric.node_host nodeb) ~name:"nsmB" ~vcpus:1 () in
  Nkfabric.add_nsm cluster nodea nsma;
  Nkfabric.add_nsm cluster nodeb nsmb;
  (tb, cluster, nodea, nodeb, nsma, nsmb)

let place cluster i =
  Nkfabric.place_vm cluster ~name:(Printf.sprintf "srv%d" i) ~vcpus:1 ~ips:[ 10 + i ] ()

(* Spread alternates the two equally-idle nodes; Pack keeps piling onto the
   most-loaded one. *)
let placement_policies () =
  let _tb, cluster, nodea, nodeb, _, _ = mk_cluster ~policy:Nkfabric.Spread () in
  let vms = List.init 4 (place cluster) in
  Alcotest.(check int) "spread: nodeA serves 2" 2 (Nkfabric.node_vm_count cluster nodea);
  Alcotest.(check int) "spread: nodeB serves 2" 2 (Nkfabric.node_vm_count cluster nodeb);
  List.iteri
    (fun i vm ->
      let expect = if i mod 2 = 0 then nodea else nodeb in
      match Nkfabric.vm_node cluster vm with
      | Some n ->
          Alcotest.(check int)
            (Printf.sprintf "srv%d node" i)
            (Nkfabric.node_index expect) (Nkfabric.node_index n)
      | None -> Alcotest.failf "srv%d has no node" i)
    vms;
  let _tb, cluster, nodea, nodeb, _, _ = mk_cluster ~policy:Nkfabric.Pack () in
  let _vms = List.init 3 (place cluster) in
  Alcotest.(check int) "pack: nodeA serves 3" 3 (Nkfabric.node_vm_count cluster nodea);
  Alcotest.(check int) "pack: nodeB serves 0" 0 (Nkfabric.node_vm_count cluster nodeb)

(* One persistent key-value connection pumping set/get round-trips with
   verified payloads; every kv error is a test failure, so "zero errors,
   zero loss" is checked op by op rather than by a summary counter. *)
let start_pump tb client addr ~ops =
  let value i = Printf.sprintf "value-%d-%s" i (String.make 32 'x') in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client) addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "pump connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 let rec pump i =
                   Nkapps.Kvstore.Client.set conn ~key:"k" ~value:(value i) ~k:(fun r ->
                       match r with
                       | Error e -> Alcotest.failf "set %d: %s" i e
                       | Ok () ->
                           Nkapps.Kvstore.Client.get conn ~key:"k" ~k:(fun r ->
                               match r with
                               | Ok (Some v) when v = value i ->
                                   ops := !ops + 1;
                                   pump (i + 1)
                               | Ok (Some _) -> Alcotest.failf "get %d: wrong value" i
                               | Ok None -> Alcotest.failf "get %d: miss" i
                               | Error e -> Alcotest.failf "get %d: %s" i e))
                 in
                 pump 0)))

let migration_live_connection () =
  let tb, cluster, _nodea, nodeb, nsma, _nsmb = mk_cluster () in
  let vm = place cluster 0 in
  let clients_host = Testbed.add_host tb ~name:"clients" in
  let client =
    Vm.create_baseline clients_host ~name:"client" ~vcpus:2 ~ips:[ 100 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let addr = Addr.make 10 6379 in
  (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e));
  let ops = ref 0 in
  start_pump tb client addr ~ops;
  let ops_at_cut = ref 0 in
  ignore
    (E.schedule tb.Testbed.engine ~delay:0.2 (fun () ->
         ignore (Nkfabric.migrate_nsm cluster ~nsm:nsma ~dst:nodeb ());
         ops_at_cut := !ops));
  (* Listener handover: a fresh connection well after the cut must land on
     the destination host's replayed listener and round-trip. *)
  let fresh_ok = ref false in
  ignore
    (E.schedule tb.Testbed.engine ~delay:0.5 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client) addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "fresh connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.get conn ~key:"k" ~k:(fun r ->
                     match r with
                     | Ok (Some _) ->
                         fresh_ok := true;
                         Nkapps.Kvstore.Client.close conn
                     | Ok None -> Alcotest.fail "fresh get: miss"
                     | Error e -> Alcotest.failf "fresh get: %s" e))));
  Testbed.run tb ~until:1.0;
  if !ops_at_cut = 0 then Alcotest.fail "no ops before the migration";
  if !ops <= !ops_at_cut then Alcotest.fail "connection did not survive the migration";
  if not !fresh_ok then Alcotest.fail "no fresh connection after the cut";
  (match Nkfabric.vm_node cluster vm with
  | Some n ->
      Alcotest.(check int) "vm served by nodeB" (Nkfabric.node_index nodeb)
        (Nkfabric.node_index n)
  | None -> Alcotest.fail "vm has no node");
  let s = Nkfabric.stats cluster in
  Alcotest.(check int) "one migration" 1 s.Nkfabric.migrations;
  Alcotest.(check int) "one VM relayed" 1 s.Nkfabric.vms_relayed;
  if s.Nkfabric.nqes_shipped = 0 then Alcotest.fail "no NQEs crossed the spine"

let remigration_home_unwind () =
  let tb, cluster, nodea, nodeb, nsma, _nsmb = mk_cluster () in
  let vm = place cluster 0 in
  let clients_host = Testbed.add_host tb ~name:"clients" in
  let client =
    Vm.create_baseline clients_host ~name:"client" ~vcpus:2 ~ips:[ 100 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  let addr = Addr.make 10 6379 in
  (match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e));
  let ops = ref 0 in
  start_pump tb client addr ~ops;
  ignore
    (E.schedule tb.Testbed.engine ~delay:0.2 (fun () ->
         let dest = Nkfabric.migrate_nsm cluster ~nsm:nsma ~dst:nodeb () in
         ignore
           (E.schedule tb.Testbed.engine ~delay:0.3 (fun () ->
                ignore (Nkfabric.migrate_nsm cluster ~nsm:dest ~dst:nodea ())))));
  (* After the homecoming the datapath must be local again: the spine byte
     counters freeze once in-flight stragglers land. *)
  let spine_mid = ref (-1) in
  let ops_mid = ref 0 in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1.0 (fun () ->
         spine_mid := (Nkfabric.stats cluster).Nkfabric.nqes_shipped;
         ops_mid := !ops));
  (* A fresh connection after the homecoming lands on the home listener. *)
  let fresh_ok = ref false in
  ignore
    (E.schedule tb.Testbed.engine ~delay:1.1 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client) addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "fresh connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 Nkapps.Kvstore.Client.get conn ~key:"k" ~k:(fun r ->
                     match r with
                     | Ok (Some _) ->
                         fresh_ok := true;
                         Nkapps.Kvstore.Client.close conn
                     | Ok None -> Alcotest.fail "fresh get: miss"
                     | Error e -> Alcotest.failf "fresh get: %s" e))));
  Testbed.run tb ~until:1.5;
  if !ops <= !ops_mid || !ops_mid = 0 then
    Alcotest.fail "connection did not keep serving after the homecoming";
  if not !fresh_ok then Alcotest.fail "no fresh connection after the homecoming";
  (match Nkfabric.vm_node cluster vm with
  | Some n ->
      Alcotest.(check int) "vm served by nodeA again" (Nkfabric.node_index nodea)
        (Nkfabric.node_index n)
  | None -> Alcotest.fail "vm has no node");
  let s = Nkfabric.stats cluster in
  Alcotest.(check int) "two migrations" 2 s.Nkfabric.migrations;
  Alcotest.(check int) "no VM relayed after homecoming" 0 s.Nkfabric.vms_relayed;
  Alcotest.(check int) "spine quiet after homecoming" !spine_mid s.Nkfabric.nqes_shipped;
  if !spine_mid <= 0 then Alcotest.fail "no NQEs ever crossed the spine"

let tests =
  [
    Alcotest.test_case "placement: spread and pack" `Quick placement_policies;
    Alcotest.test_case "live migration keeps the connection" `Quick migration_live_connection;
    Alcotest.test_case "re-migration home unwinds the relay" `Quick remigration_home_unwind;
  ]
