(* Fixture coverage for the nklint static analyzer (tools/nklint): one
   minimal snippet per rule asserting it fires exactly where expected and
   stays silent on the sanctioned replacement idiom — plus a whole-system
   determinism regression: the CoreEngine connection table must dump
   byte-identically across two identical runs (the property rules D1/D2
   exist to protect). *)

open Nkcore
module L = Nklint_rules
module Types = Tcpstack.Types

let lint ?(path = "lib/fixture.ml") src = L.lint_source ~path src

let check_diags what expected ?path src =
  let got = List.map (fun d -> (d.L.rule, d.L.line)) (lint ?path src) in
  Alcotest.(check (list (pair string int))) what expected got

(* ---- D1: wall clock / ambient randomness ------------------------------ *)

let d1_wall_clock () =
  check_diags "gettimeofday flagged in lib/"
    [ ("D1", 1) ]
    "let t0 = Unix.gettimeofday ()";
  check_diags "Sys.time flagged in lib/" [ ("D1", 2) ] "let x = 1\nlet t = Sys.time ()";
  check_diags "wall clock allowed in bench/" [] ~path:"bench/fixture.ml"
    "let t0 = Unix.gettimeofday ()"

let d1_randomness () =
  check_diags "ambient Random flagged" [ ("D1", 1) ] "let x = Random.int 5";
  (* The cluster fabric lives under lib/ like everything else: migration
     decisions must come from the seeded Rng, never ambient randomness. *)
  check_diags "ambient Random flagged under lib/nkfabric/"
    [ ("D1", 1) ]
    ~path:"lib/nkfabric/nkfabric.ml" "let pick = Random.int 2";
  (* The Homa grant pacer's SRPT choice must be a deterministic fold over
     active messages — ambient randomness there would desynchronize the
     grant clock across identical runs. *)
  check_diags "ambient Random flagged under lib/homastack/"
    [ ("D1", 1) ]
    ~path:"lib/homastack/homa.ml" "let quantum = Random.int 5792";
  (* The observability plane must observe virtual time only: a wall clock
     in an alert timestamp or flight dump would break byte-identical
     same-seed replays. *)
  check_diags "wall clock flagged under lib/nkobs/"
    [ ("D1", 1) ]
    ~path:"lib/nkobs/nkobs.ml" "let stamp = Unix.gettimeofday ()";
  check_diags "Random.self_init flagged" [ ("D1", 1) ] "let () = Random.self_init ()";
  check_diags "seeded Nkutil.Rng is the sanctioned source" []
    "let r = Nkutil.Rng.create ~seed:7\nlet x = Nkutil.Rng.int r 5"

(* ---- D2: order-sensitive Hashtbl iteration ---------------------------- *)

let d2_hashtbl_order () =
  check_diags "Hashtbl.iter flagged"
    [ ("D2", 1) ]
    "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl";
  check_diags "Hashtbl.fold flagged"
    [ ("D2", 1) ]
    "let f tbl = Hashtbl.fold (fun _ _ acc -> acc) tbl 0";
  check_diags "Det_tbl replacement is silent" []
    "let f tbl = Nkutil.Det_tbl.iter ~cmp:Int.compare (fun _ _ -> ()) tbl";
  check_diags "ordered-ok waiver on the preceding line" []
    "(* nklint: ordered-ok *)\nlet f tbl = Hashtbl.fold (fun _ _ acc -> acc) tbl 0";
  check_diags "waiver only covers its own site"
    [ ("D2", 4) ]
    "(* nklint: ordered-ok *)\n\
     let f tbl = Hashtbl.fold (fun _ _ acc -> acc) tbl 0\n\
     \n\
     let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl"

(* ---- D3: bare polymorphic compare ------------------------------------- *)

let d3_poly_compare () =
  check_diags "Array.sort compare flagged"
    [ ("D3", 1) ]
    "let s a = Array.sort compare a";
  check_diags "Stdlib.compare as argument flagged"
    [ ("D3", 1) ]
    "let s l = List.sort Stdlib.compare l";
  check_diags "direct application is not the D3 target" [] "let c = compare 1 2";
  check_diags "monomorphic comparator is silent" []
    "let s l = List.sort Int.compare l"

(* ---- D4: Obj.magic and exception swallowing --------------------------- *)

let d4_obj_magic () =
  check_diags "Obj.magic flagged" [ ("D4", 1) ] "let f x = Obj.magic x";
  check_diags "typed dummy is silent" [] "let f d n = Array.make n d"

let d4_swallow () =
  check_diags "try ... with _ flagged" [ ("D4", 1) ] "let f g = try g () with _ -> ()";
  check_diags "specific exception is silent" []
    "let f g = try g () with Not_found -> ()";
  check_diags "swallow-ok waiver" []
    "let f g = try g () with _ -> () (* nklint: swallow-ok *)"

(* ---- P1: NQE wire-protocol invariants --------------------------------- *)

let p1_good =
  "type op = Socket | Close\n\
   let op_to_byte = function Socket -> 1 | Close -> 2\n\
   let op_of_byte = function 1 -> Some Socket | 2 -> Some Close | _ -> None\n\
   let size_bytes = 12\n\
   let encode_into t buf ~pos =\n\
  \  Bytes.set_uint8 buf pos t;\n\
  \  Bytes.set_int32_le buf (pos + 8) 0l\n"

let p1_bad =
  "type op = Socket | Close | Ev_err\n\
   let op_to_byte = function Socket -> 1 | Close -> 2 | Ev_err -> 2\n\
   let op_of_byte = function 1 -> Some Socket | 2 -> Some Close | _ -> None\n\
   let size_bytes = 16\n\
   let encode_into t buf ~pos =\n\
  \  Bytes.set_uint8 buf pos t;\n\
  \  Bytes.set_int64_le buf (pos + 4) 0L\n"

let p1_wire () =
  check_diags "consistent mini-codec is silent" ~path:"lib/core/nqe.ml" [] p1_good;
  check_diags "inconsistent codec: duplicate byte, missing decode arm, wrong span"
    ~path:"lib/core/nqe.ml"
    [ ("P1", 2); ("P1", 3); ("P1", 5) ]
    p1_bad;
  check_diags "P1 only applies to the real codec file" [] p1_bad

let p1_real_codec () =
  (* The invariant holds on the actual lib/core/nqe.ml encoder: byte-level
     encode/decode round-trips inside the declared wire size. *)
  let nqe =
    Nqe.make ~op:Nqe.Ev_data ~vm_id:3 ~qset:1 ~sock:99 ~op_data:42L ~data_ptr:512
      ~size:1024 ()
  in
  let buf = Nqe.encode nqe in
  Alcotest.(check int) "wire size" Nqe.size_bytes (Bytes.length buf);
  match Nqe.decode buf with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok d -> Alcotest.(check bool) "round-trip" true (d = nqe)

(* ---- H1: full NQE decode on the datapath ------------------------------ *)

let h1_hot_path_decode () =
  check_diags "Nqe.decode flagged in a hot-path module"
    ~path:"lib/core/coreengine.ml"
    [ ("H1", 1) ]
    "let f raw = Nqe.decode raw";
  check_diags "Nqe.decode_from flagged too" ~path:"lib/core/nk_device.ml"
    [ ("H1", 1) ]
    "let f raw = Nqe.decode_from raw 0";
  check_diags "decode-ok waiver silences the line below it"
    ~path:"lib/core/guestlib.ml" []
    "(* nklint: decode-ok *)\nlet f raw = Nqe.decode raw";
  check_diags "View accessors are the sanctioned idiom"
    ~path:"lib/core/coreengine.ml" []
    "let f raw = Nqe.View.qset raw";
  check_diags "full decode is fine off the hot path"
    ~path:"lib/experiments/fig11_nqe_switch.ml" []
    "let f raw = Nqe.decode raw";
  (* Same basename outside lib/core (e.g. a test fixture) is not hot path. *)
  check_diags "hot-path basenames only match under core/"
    ~path:"test/coreengine.ml" []
    "let f raw = Nqe.decode raw"

(* ---- W1: waivers cannot rot -------------------------------------------- *)

let w1_stale_waivers () =
  check_diags "stale waiver is itself reported"
    [ ("W1", 1) ]
    "(* nklint: ordered-ok *)\nlet f x = x + 1";
  check_diags "used waiver is not reported" []
    "(* nklint: ordered-ok *)\nlet f tbl = Hashtbl.fold (fun _ _ acc -> acc) tbl 0";
  check_diags "unknown nklint token is reported"
    [ ("W1", 1) ]
    "(* nklint: frobnicate *)\nlet f x = x + 1";
  check_diags "token quoted in a string literal is fixture text" []
    "let s = \"(* nklint: ordered-ok *)\\nlet f = Hashtbl.fold\"";
  (* nkscope owns its tokens inside lib/ .ml files; elsewhere they can never
     suppress anything. *)
  check_diags "nkscope token outside lib/ is reported" ~path:"bin/fixture.ml"
    [ ("W1", 1) ]
    "(* nkscope: volatile *)\nlet f x = x + 1";
  check_diags "nkscope token under lib/ is left to nkscope" []
    "(* nkscope: volatile *)\nlet f x = x + 1";
  check_diags "unknown nkscope token is reported anywhere"
    [ ("W1", 1) ]
    "(* nkscope: volatil *)\nlet f x = x + 1"

(* ---- JSON output ------------------------------------------------------- *)

let json_format () =
  let d = { L.file = "lib/a.ml"; line = 3; col = 7; rule = "D1"; msg = "say \"hi\"\n" } in
  Alcotest.(check string)
    "escaping"
    "{\"file\":\"lib/a.ml\",\"line\":3,\"col\":7,\"rule\":\"D1\",\"msg\":\"say \\\"hi\\\"\\n\"}"
    (L.to_json d);
  Alcotest.(check string) "empty array" "[]" (L.to_json_array [])

(* ---- S1: span stage begin/end pairing --------------------------------- *)

let s1_uses ~path src = L.stage_uses_of_source ~path src

let s1_span_pairing () =
  let begins, ends =
    s1_uses ~path:"lib/core/a.ml"
      "let f spans id = Nkspan.begin_stage spans ~id ~component:\"dev\" \"ring\""
  in
  let begins2, ends2 =
    s1_uses ~path:"lib/core/b.ml" "let g spans id = Nkspan.end_stage spans ~id \"ring\""
  in
  (* Opener and closer in different files: aggregation pairs them up. *)
  Alcotest.(check (list (pair string int)))
    "cross-file pairing is silent" []
    (List.map
       (fun d -> (d.L.rule, d.L.line))
       (L.span_pairing ~begins:(begins @ begins2) ~ends:(ends @ ends2)));
  (* The same opener with no closer anywhere fires once, at the begin site. *)
  Alcotest.(check (list (pair string int)))
    "unmatched begin_stage fires S1"
    [ ("S1", 1) ]
    (List.map (fun d -> (d.L.rule, d.L.line)) (L.span_pairing ~begins ~ends));
  (* A closer with no opener is just as suspicious. *)
  Alcotest.(check (list (pair string int)))
    "unmatched end_stage fires S1"
    [ ("S1", 1) ]
    (List.map
       (fun d -> (d.L.rule, d.L.line))
       (L.span_pairing ~begins:[] ~ends:ends2));
  (* Non-literal stage arguments are outside the syntactic rule's scope. *)
  let b3, e3 = s1_uses ~path:"lib/core/c.ml" "let h spans id s = Nkspan.begin_stage spans ~id ~component:\"x\" s" in
  Alcotest.(check (pair int int)) "non-literal stage ignored" (0, 0)
    (List.length b3, List.length e3)

(* ---- whole-system determinism regression ------------------------------ *)

let conn_dump_once ~seed =
  let tb = Testbed.create ~config:{ Testbed.Config.default with seed } () in
  let hosta = Testbed.add_host tb ~name:"hostA" in
  let hostb = Testbed.add_host tb ~name:"hostB" in
  let nsm = Nsm.create_kernel hosta ~name:"nsm" ~vcpus:2 () in
  let vm = Vm.create_nk hosta ~name:"vm" ~vcpus:2 ~ips:[ 10 ] ~nsms:[ nsm ] () in
  let client =
    Vm.create_baseline hostb ~name:"client" ~vcpus:4 ~ips:[ 20 ]
      ~profile:Sim.Cost_profile.ideal ()
  in
  (* Keepalive connections stay established, so the connection table is
     non-trivial when the run ends. *)
  let proto = Nkapps.Proto.Fixed { request = 64; response = 256; keepalive = true } in
  (match
     Nkapps.Epoll_server.start ~engine:tb.Testbed.engine ~api:(Vm.api vm)
       (Nkapps.Epoll_server.config ~proto (Addr.make 10 80))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.err_to_string e));
  ignore
    (Sim.Engine.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         ignore
           (Nkapps.Loadgen.start ~engine:tb.Testbed.engine ~api:(Vm.api client)
              {
                Nkapps.Loadgen.server = Addr.make 10 80;
                proto;
                mode =
                  Nkapps.Loadgen.Closed
                    { concurrency = 8; total = Some 200; duration = None };
                warmup = 0.0;
              })));
  Testbed.run tb ~until:10.0;
  Coreengine.dump_conn_table (Host.coreengine hosta)

let conn_table_dump_deterministic () =
  let a = conn_dump_once ~seed:4242 in
  let b = conn_dump_once ~seed:4242 in
  Alcotest.(check bool) "dump is non-trivial" true (String.length a > 0);
  Alcotest.(check string) "conn table dumps byte-identical" a b

let tests =
  [
    Alcotest.test_case "D1 wall clock" `Quick d1_wall_clock;
    Alcotest.test_case "D1 ambient randomness" `Quick d1_randomness;
    Alcotest.test_case "D2 Hashtbl order" `Quick d2_hashtbl_order;
    Alcotest.test_case "D3 polymorphic compare" `Quick d3_poly_compare;
    Alcotest.test_case "D4 Obj.magic" `Quick d4_obj_magic;
    Alcotest.test_case "D4 exception swallowing" `Quick d4_swallow;
    Alcotest.test_case "P1 NQE wire invariants" `Quick p1_wire;
    Alcotest.test_case "P1 holds on the real codec" `Quick p1_real_codec;
    Alcotest.test_case "H1 hot-path NQE decode" `Quick h1_hot_path_decode;
    Alcotest.test_case "W1 stale waivers" `Quick w1_stale_waivers;
    Alcotest.test_case "JSON output" `Quick json_format;
    Alcotest.test_case "S1 span stage pairing" `Quick s1_span_pairing;
    Alcotest.test_case "conn-table dump determinism" `Quick conn_table_dump_deterministic;
  ]
