(* Nkmon unit tests: registry semantics (idempotent registration, kind
   mismatch, deterministic export), histogram summarisation, and the trace
   ring buffer (wraparound, seq numbering, drop accounting). *)

module R = Nkmon.Registry
module T = Nkmon.Trace

let registry_basics () =
  let r = R.create () in
  let c = R.counter r ~component:"ce" ~instance:"a" ~name:"switched" in
  R.incr c;
  R.add c 10;
  Alcotest.(check int) "counter value" 11 (R.counter_value c);
  (* Re-registering the same key returns the same handle. *)
  let c' = R.counter r ~component:"ce" ~instance:"a" ~name:"switched" in
  R.incr c';
  Alcotest.(check int) "idempotent handle" 12 (R.counter_value c);
  Alcotest.(check int) "one entry" 1 (R.cardinality r);
  (match R.find r ~component:"ce" ~instance:"a" ~name:"switched" with
  | Some (R.Counter 12) -> ()
  | _ -> Alcotest.fail "find returned wrong value");
  let g = R.gauge r ~component:"ce" ~instance:"a" ~name:"depth" in
  R.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge value" 3.5 (R.gauge_value g);
  R.sampler r ~component:"ce" ~instance:"a" ~name:"live" (fun () -> 7.0);
  (match R.find r ~component:"ce" ~instance:"a" ~name:"live" with
  | Some (R.Gauge 7.0) -> ()
  | _ -> Alcotest.fail "sampler not evaluated");
  Alcotest.(check int) "three entries" 3 (R.cardinality r)

let kind_mismatch () =
  let r = R.create () in
  ignore (R.counter r ~component:"x" ~instance:"y" ~name:"m");
  Alcotest.check_raises "counter key reused as gauge"
    (Invalid_argument "Nkmon.Registry: x/y/m is a counter, not a gauge") (fun () ->
      ignore (R.gauge r ~component:"x" ~instance:"y" ~name:"m"))

let export_sorted () =
  let r = R.create () in
  (* Register out of order; export must sort by component/instance/metric. *)
  ignore (R.counter r ~component:"b" ~instance:"i" ~name:"z");
  ignore (R.counter r ~component:"a" ~instance:"j" ~name:"y");
  ignore (R.counter r ~component:"a" ~instance:"i" ~name:"x");
  let keys =
    List.map (fun e -> (e.R.component, e.R.instance, e.R.metric)) (R.entries r)
  in
  Alcotest.(check bool)
    "sorted" true
    (keys = [ ("a", "i", "x"); ("a", "j", "y"); ("b", "i", "z") ]);
  let rows = R.to_rows r in
  Alcotest.(check int) "row count" 3 (List.length rows);
  Alcotest.(check bool) "csv has header" true
    (String.length (R.to_csv r) > 0
    && String.sub (R.to_csv r) 0 9 = "component")

let histogram_export () =
  let r = R.create () in
  let h = R.histogram r ~component:"tc" ~instance:"s" ~name:"lat" in
  for i = 1 to 100 do
    Nkutil.Histogram.record h (float_of_int i)
  done;
  (match R.find r ~component:"tc" ~instance:"s" ~name:"lat" with
  | Some (R.Histogram h') ->
      Alcotest.(check int) "count through registry" 100 (Nkutil.Histogram.count h')
  | _ -> Alcotest.fail "histogram not found");
  let cell = List.nth (List.hd (R.to_rows r)) 3 in
  Alcotest.(check bool) "summary mentions count" true
    (String.length cell >= 5 && String.sub cell 0 5 = "n=100");
  (* p50/p99 land near the true percentiles (log-bucketed, so approximate). *)
  let p50 = Nkutil.Histogram.percentile h 50.0 in
  let p99 = Nkutil.Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p50 in range" true (p50 >= 40.0 && p50 <= 60.0);
  Alcotest.(check bool) "p99 in range" true (p99 >= 90.0 && p99 <= 110.0)

let trace_ring_wraparound () =
  let now = ref 0.0 in
  let tr = T.create ~capacity:4 ~enabled:true ~now:(fun () -> !now) () in
  for i = 1 to 10 do
    now := float_of_int i;
    T.record tr (T.Custom { component = "t"; name = "tick"; detail = string_of_int i })
  done;
  Alcotest.(check int) "recorded" 10 (T.recorded tr);
  Alcotest.(check int) "dropped" 6 (T.dropped tr);
  let rs = T.records tr in
  Alcotest.(check int) "ring holds capacity" 4 (List.length rs);
  (* The survivors are the newest four, in seq order. *)
  Alcotest.(check (list int)) "survivor seqs" [ 6; 7; 8; 9 ]
    (List.map (fun r -> r.T.seq) rs);
  Alcotest.(check (float 0.0)) "virtual timestamps" 7.0 (List.hd rs).T.time;
  T.clear tr;
  Alcotest.(check int) "clear resets" 0 (T.recorded tr)

let trace_disabled_is_free () =
  let tr = T.create ~capacity:4 ~enabled:false ~now:(fun () -> 0.0) () in
  T.record tr (T.Ring_defer { vm_id = 1 });
  Alcotest.(check int) "nothing recorded" 0 (T.recorded tr);
  T.set_enabled tr true;
  T.record tr (T.Ring_defer { vm_id = 1 });
  Alcotest.(check int) "recorded after enable" 1 (T.recorded tr)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  loop 0

let trace_export_shapes () =
  let tr = T.create ~capacity:8 ~enabled:true ~now:(fun () -> 0.5) () in
  T.record tr
    (T.Nqe_enqueue
       { device = 1; qset = 0; queue = T.Job; op = "socket"; vm_id = 1; sock = 7 });
  T.record tr
    (T.Tcp_state { stack = "nsm"; sock = 7; old_state = "SYN_SENT"; new_state = "ESTABLISHED" });
  let json = T.to_json tr in
  let csv = T.to_csv tr in
  Alcotest.(check bool) "json mentions both events" true
    (contains json "nqe_enqueue" && contains json "tcp_state");
  Alcotest.(check bool) "csv has header" true
    (String.sub csv 0 8 = "seq,time");
  (* Export is deterministic for identical content. *)
  Alcotest.(check string) "json stable" json (T.to_json tr)

let null_handle_works () =
  let mon = Nkmon.null () in
  let c = Nkmon.counter mon ~component:"a" ~instance:"b" ~name:"c" in
  Nkmon.Registry.incr c;
  Alcotest.(check int) "null counter still counts" 1 (Nkmon.Registry.counter_value c);
  Alcotest.(check bool) "null tracing off" false (Nkmon.tracing mon);
  Nkmon.event mon (T.Ring_defer { vm_id = 1 });
  Alcotest.(check int) "null trace drops" 0 (T.recorded (Nkmon.trace mon))

let tests =
  [
    Alcotest.test_case "registry basics" `Quick registry_basics;
    Alcotest.test_case "kind mismatch raises" `Quick kind_mismatch;
    Alcotest.test_case "export is sorted" `Quick export_sorted;
    Alcotest.test_case "histogram percentile export" `Quick histogram_export;
    Alcotest.test_case "trace ring wraparound" `Quick trace_ring_wraparound;
    Alcotest.test_case "disabled trace records nothing" `Quick trace_disabled_is_free;
    Alcotest.test_case "trace export shapes" `Quick trace_export_shapes;
    Alcotest.test_case "null handle" `Quick null_handle_works;
  ]
