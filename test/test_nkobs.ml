(* Nkobs observability plane (DESIGN.md par.17): metric federation and
   merged-trace determinism over a live Nkfabric cluster, SLO window
   accounting (breach, recovery, min_requests), edge-triggered pressure
   and dropped-events alerts, byte-identical flight-recorder dumps, the
   alert -> Nkctl responder loop, and the cluster-wide span-id guarantees
   (host-unique ids, spine-stage reconciliation across a live migration). *)

open Nkcore
module Types = Tcpstack.Types
module E = Sim.Engine
module H = Nkutil.Histogram

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let mk_cluster ?(trace = false) ?(span_every = 0) ?(seed = 11) () =
  let tb =
    Testbed.create
      ~config:{ Testbed.Config.default with seed; trace_enabled = trace; span_every }
      ()
  in
  let cluster = Nkfabric.create tb in
  let nodea = Nkfabric.add_node cluster ~name:"nodeA" in
  let nodeb = Nkfabric.add_node cluster ~name:"nodeB" in
  let nsma = Nsm.create_kernel (Nkfabric.node_host nodea) ~name:"nsmA" ~vcpus:1 () in
  let nsmb = Nsm.create_kernel (Nkfabric.node_host nodeb) ~name:"nsmB" ~vcpus:1 () in
  Nkfabric.add_nsm cluster nodea nsma;
  Nkfabric.add_nsm cluster nodeb nsmb;
  (tb, cluster, nodea, nodeb, nsma, nsmb)

let add_client tb =
  let clients_host = Testbed.add_host tb ~name:"clients" in
  Vm.create_baseline clients_host ~name:"client" ~vcpus:4 ~ips:[ 100 ]
    ~profile:Sim.Cost_profile.ideal ()

(* A persistent kv connection pumping verified set/get round-trips. *)
let start_pump tb client addr ~ops =
  ignore
    (E.schedule tb.Testbed.engine ~delay:1e-3 (fun () ->
         Nkapps.Kvstore.Client.connect ~engine:tb.Testbed.engine ~api:(Vm.api client) addr
           ~k:(fun r ->
             match r with
             | Error e -> Alcotest.failf "pump connect: %s" (Types.err_to_string e)
             | Ok conn ->
                 let rec pump i =
                   Nkapps.Kvstore.Client.set conn ~key:"k"
                     ~value:(Printf.sprintf "v%d" i)
                     ~k:(fun r ->
                       match r with
                       | Error e -> Alcotest.failf "set %d: %s" i e
                       | Ok () ->
                           ops := !ops + 1;
                           pump (i + 1))
                 in
                 pump 0)))

let serve_kv tb vm addr =
  match Nkapps.Kvstore.start ~engine:tb.Testbed.engine ~api:(Vm.api vm) ~addr with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv: %s" (Types.err_to_string e)

(* ---- metric federation ---------------------------------------------------- *)

(* One loaded cluster observed end to end; returns every federated export. *)
let run_federated ~seed () =
  let tb, cluster, _nodea, _nodeb, _nsma, _nsmb = mk_cluster ~trace:true ~seed () in
  let vm0 = Nkfabric.place_vm cluster ~name:"srv0" ~vcpus:1 ~ips:[ 10 ] () in
  let vm1 = Nkfabric.place_vm cluster ~name:"srv1" ~vcpus:1 ~ips:[ 11 ] () in
  let client = add_client tb in
  let ops0 = ref 0 and ops1 = ref 0 in
  serve_kv tb vm0 (Addr.make 10 6379);
  serve_kv tb vm1 (Addr.make 11 6379);
  start_pump tb client (Addr.make 10 6379) ~ops:ops0;
  start_pump tb client (Addr.make 11 6379) ~ops:ops1;
  let obs = Nkobs.of_fabric cluster in
  Nkobs.start obs;
  Testbed.run tb ~until:0.3;
  Nkobs.stop obs;
  if !ops0 = 0 || !ops1 = 0 then Alcotest.fail "no traffic";
  obs

let federation_host_tags () =
  let obs = run_federated ~seed:11 () in
  Alcotest.(check int) "three sources" 3 (List.length (Nkobs.sources obs));
  Alcotest.(check (list string))
    "source tags in add order"
    [ "cluster"; "nodeA"; "nodeB" ]
    (List.map fst (Nkobs.sources obs));
  let rows = Nkobs.to_rows obs in
  let hosts_seen =
    List.sort_uniq String.compare (List.map (fun r -> List.hd r) rows)
  in
  Alcotest.(check (list string))
    "every source contributes rows"
    [ "cluster"; "nodeA"; "nodeB" ]
    hosts_seen;
  (* Both per-node stacks show up under their own host tag. *)
  let has ~host ~component =
    List.exists
      (fun r -> List.nth r 0 = host && List.nth r 1 = component)
      rows
  in
  Alcotest.(check bool) "nodeA tcpstack federated" true (has ~host:"nodeA" ~component:"tcpstack");
  Alcotest.(check bool) "nodeB tcpstack federated" true (has ~host:"nodeB" ~component:"tcpstack");
  Alcotest.(check bool) "cluster-scope spine federated" true
    (has ~host:"cluster" ~component:"nkfabric");
  (* The merged trace interleaves hosts in virtual-time order. *)
  let merged = Nkobs.merged_trace obs in
  Alcotest.(check bool) "merged trace non-trivial" true (List.length merged > 100);
  let rec nondecreasing = function
    | (_, (a : Nkmon.Trace.record)) :: ((_, b) :: _ as tl) ->
        a.Nkmon.Trace.time <= b.Nkmon.Trace.time && nondecreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "merged trace time-ordered" true (nondecreasing merged);
  let trace_hosts = List.sort_uniq String.compare (List.map fst merged) in
  Alcotest.(check bool) "merged trace covers both nodes" true
    (List.mem "nodeA" trace_hosts && List.mem "nodeB" trace_hosts)

let federation_deterministic () =
  let snap () =
    let obs = run_federated ~seed:77 () in
    (Nkobs.to_csv obs, Nkobs.to_json obs, Nkobs.merged_trace_csv obs,
     Nkobs.merged_trace_json obs)
  in
  let csv_a, json_a, tcsv_a, tjson_a = snap () in
  let csv_b, json_b, tcsv_b, tjson_b = snap () in
  Alcotest.(check bool) "csv non-trivial" true (String.length csv_a > 500);
  Alcotest.(check string) "to_csv byte-identical" csv_a csv_b;
  Alcotest.(check string) "to_json byte-identical" json_a json_b;
  Alcotest.(check string) "merged trace csv byte-identical" tcsv_a tcsv_b;
  Alcotest.(check string) "merged trace json byte-identical" tjson_a tjson_b

(* ---- SLO accounting ------------------------------------------------------- *)

let slo_windows () =
  let tb = Testbed.create () in
  let obs = Nkobs.create ~engine:tb.Testbed.engine ~mon:tb.Testbed.mon () in
  let lat = H.create () in
  let req = ref 0 and errs = ref 0 in
  Nkobs.add_tenant obs ~name:"gold"
    ~target:{ Nkobs.latency_p99 = Some 0.001; max_error_rate = 0.5; min_requests = 10 }
    ~probe:(fun () ->
      { Nkobs.p_requests = !req; p_errors = !errs; p_latency = lat });
  let errlat = H.create () in
  let ereq = ref 0 and eerrs = ref 0 in
  Nkobs.add_tenant obs ~name:"flaky"
    ~target:{ Nkobs.latency_p99 = None; max_error_rate = 0.0; min_requests = 10 }
    ~probe:(fun () ->
      { Nkobs.p_requests = !ereq; p_errors = !eerrs; p_latency = errlat });
  let record n v =
    for _ = 1 to n do
      H.record lat v;
      incr req
    done
  in
  let at d f = ignore (E.schedule tb.Testbed.engine ~delay:d f) in
  at 0.10 (fun () -> Nkobs.tick obs) (* first tick only snapshots *);
  at 0.20 (fun () -> record 100 0.0002; Nkobs.tick obs) (* healthy window *);
  at 0.30 (fun () -> record 5 0.0002; Nkobs.tick obs) (* < min_requests: held open *);
  at 0.40 (fun () -> record 100 0.005; Nkobs.tick obs) (* breach opens *);
  at 0.50 (fun () -> record 100 0.005; Nkobs.tick obs) (* still in breach: no re-alert *);
  at 0.60 (fun () ->
      record 100 0.0002;
      (* the flaky tenant serves a window with errors in the same tick *)
      for _ = 1 to 20 do H.record errlat 0.0001; incr ereq done;
      eerrs := 5;
      Nkobs.tick obs) (* gold recovers; flaky breaches on error_rate *);
  Testbed.run tb ~until:1.0;
  (match Nkobs.slo_status obs with
  | [ gold; flaky ] ->
      Alcotest.(check string) "gold status" "gold" gold.Nkobs.st_tenant;
      Alcotest.(check bool) "gold ok after recovery" true gold.Nkobs.st_ok;
      Alcotest.(check int) "gold windows evaluated" 4 gold.Nkobs.st_windows;
      Alcotest.(check int) "gold breach windows" 2 gold.Nkobs.st_breaches;
      Alcotest.(check int) "gold last window size" 100 gold.Nkobs.st_last_requests;
      if gold.Nkobs.st_last_p99 > 0.001 then Alcotest.fail "gold last p99 not healthy";
      Alcotest.(check bool) "flaky in breach" false flaky.Nkobs.st_ok;
      if Float.abs (flaky.Nkobs.st_last_error_rate -. 0.25) > 1e-9 then
        Alcotest.failf "flaky error rate %f" flaky.Nkobs.st_last_error_rate
  | l -> Alcotest.failf "expected 2 tenants, got %d" (List.length l));
  let kinds = List.map (fun (_, a) -> Nkobs.alert_type a) (Nkobs.alerts obs) in
  Alcotest.(check (list string))
    "alert stream: one breach, one recovery, one error_rate breach"
    [ "slo_breach"; "slo_recovered"; "slo_breach" ]
    kinds;
  (match Nkobs.alerts obs with
  | (_, Nkobs.Slo_breach { tenant; metric; _ }) :: _ ->
      Alcotest.(check string) "first breach tenant" "gold" tenant;
      Alcotest.(check string) "first breach metric" "p99" metric
  | _ -> Alcotest.fail "first alert not a breach");
  match List.rev (Nkobs.alerts obs) with
  | (_, Nkobs.Slo_breach { tenant; metric; _ }) :: _ ->
      Alcotest.(check string) "last breach tenant" "flaky" tenant;
      Alcotest.(check string) "last breach metric" "error_rate" metric
  | _ -> Alcotest.fail "last alert not a breach"

(* ---- edge-triggered pressure rules ---------------------------------------- *)

let pressure_rules_edge_triggered () =
  let tb = Testbed.create () in
  let mon = tb.Testbed.mon in
  let obs = Nkobs.create ~engine:tb.Testbed.engine ~mon () in
  Nkobs.add_source obs ~host:"h0" mon;
  let used = ref 0.0 and depth = ref 0.0 in
  Nkmon.sampler mon ~component:"hugepages" ~instance:"r0" ~name:"bytes_in_use" (fun () ->
      !used);
  Nkmon.sampler mon ~component:"hugepages" ~instance:"r0" ~name:"capacity_bytes"
    (fun () -> 100.0);
  Nkmon.sampler mon ~component:"coreengine" ~instance:"ce0" ~name:"deferred_depth"
    (fun () -> !depth);
  Nkobs.tick obs;
  Alcotest.(check int) "quiet below thresholds" 0 (Nkobs.alert_count obs);
  used := 95.0;
  depth := 100.0;
  Nkobs.tick obs;
  Alcotest.(check (list string))
    "both rules fire on the crossing"
    [ "hugepage_pressure"; "ring_pressure" ]
    (List.map (fun (_, a) -> Nkobs.alert_type a) (Nkobs.alerts obs));
  Nkobs.tick obs;
  Alcotest.(check int) "persistent condition stays quiet" 2 (Nkobs.alert_count obs);
  used := 10.0;
  depth := 0.0;
  Nkobs.tick obs;
  Alcotest.(check int) "clearing re-arms silently" 2 (Nkobs.alert_count obs);
  used := 95.0;
  Nkobs.tick obs;
  Alcotest.(check int) "re-crossing fires again" 3 (Nkobs.alert_count obs);
  match List.rev (Nkobs.alerts obs) with
  | (_, Nkobs.Hugepage_pressure { host; region; used_frac }) :: _ ->
      Alcotest.(check string) "host tag" "h0" host;
      Alcotest.(check string) "region" "r0" region;
      if Float.abs (used_frac -. 0.95) > 1e-9 then Alcotest.failf "frac %f" used_frac
  | _ -> Alcotest.fail "last alert not hugepage pressure"

(* ---- dropped events + the flight recorder --------------------------------- *)

let run_dropping_world () =
  let tb =
    Testbed.create
      ~config:
        { Testbed.Config.default with trace_enabled = true; trace_capacity = Some 16 }
      ()
  in
  let mon = tb.Testbed.mon in
  let obs = Nkobs.create ~engine:tb.Testbed.engine ~mon () in
  Nkobs.add_source obs ~host:"h0" mon;
  let burst n =
    for i = 1 to n do
      Nkmon.event mon
        (Nkmon.Trace.Custom
           { component = "test"; name = "burst"; detail = string_of_int i })
    done
  in
  let at d f = ignore (E.schedule tb.Testbed.engine ~delay:d f) in
  at 0.1 (fun () -> burst 40; Nkobs.tick obs) (* ring of 16 wraps: alert *);
  at 0.2 (fun () -> burst 40; Nkobs.tick obs) (* still dropping: quiet *);
  at 0.3 (fun () -> Nkobs.tick obs) (* no new drops: re-arms *);
  at 0.4 (fun () -> burst 40; Nkobs.tick obs) (* fires again *);
  Testbed.run tb ~until:0.5;
  obs

let dropped_events_alerts () =
  let obs = run_dropping_world () in
  let drops =
    List.filter_map
      (fun (_, a) ->
        match a with Nkobs.Dropped_events { host; dropped } -> Some (host, dropped) | _ -> None)
      (Nkobs.alerts obs)
  in
  Alcotest.(check int) "edge-triggered: two alerts for three dropping ticks" 2
    (List.length drops);
  List.iter
    (fun (host, dropped) ->
      Alcotest.(check string) "host tag" "h0" host;
      Alcotest.(check bool) "positive delta" true (dropped > 0))
    drops

let flight_dumps_deterministic () =
  let snap () =
    let obs = run_dropping_world () in
    List.map
      (fun (time, alert, dump) ->
        Printf.sprintf "%.9f %s\n%s" time (Nkobs.alert_type alert) dump)
      (Nkobs.dumps obs)
    |> String.concat "\n--\n"
  in
  let a = snap () in
  let b = snap () in
  Alcotest.(check bool) "dumps captured" true (String.length a > 100);
  Alcotest.(check string) "flight dumps byte-identical across runs" a b;
  (* Shape: snapshot header names the alert, then host-tagged CSV rows. *)
  Alcotest.(check bool) "dump carries the flight header" true
    (contains ~affix:"# flight" a);
  Alcotest.(check bool) "dump rows host-tagged" true
    (contains ~affix:"\nh0," a)

(* ---- the responder loop: alert -> Nkctl verb ------------------------------ *)

let alert_drives_nkctl () =
  let tb = Testbed.create () in
  let host = Testbed.add_host tb ~name:"hostA" in
  let nsm0 = Nsm.create_kernel host ~name:"nsm0" ~vcpus:1 () in
  let ctl =
    Nkctl.create host
      ~policy:
        { Nkctl.Policy.default with high_watermark = infinity; low_watermark = 0.0 }
      ~spawn:(fun i -> Nsm.create_kernel host ~name:(Printf.sprintf "nsm%d" (i + 1)) ~vcpus:1 ())
      ()
  in
  Nkctl.manage ctl nsm0;
  let vm = Vm.create_nk host ~name:"vm" ~vcpus:1 ~ips:[ 10 ] ~nsms:[ nsm0 ] () in
  Nkctl.add_vm ctl vm ~home:nsm0;
  let obs = Nkobs.create ~engine:tb.Testbed.engine ~mon:tb.Testbed.mon () in
  Nkobs.add_source obs ~host:"hostA" tb.Testbed.mon;
  let used = ref 0.0 in
  Nkmon.sampler tb.Testbed.mon ~component:"hugepages" ~instance:"vm" ~name:"bytes_in_use"
    (fun () -> !used);
  Nkmon.sampler tb.Testbed.mon ~component:"hugepages" ~instance:"vm"
    ~name:"capacity_bytes" (fun () -> 100.0);
  let reacted = ref 0 in
  Nkobs.on_alert obs (fun ~time:_ alert ->
      match alert with
      | Nkobs.Hugepage_pressure _ ->
          incr reacted;
          let fresh = Nkctl.spawn_nsm ctl in
          Nkctl.handover ctl ~vm ~target:fresh
      | _ -> ());
  ignore
    (E.schedule tb.Testbed.engine ~delay:0.1 (fun () ->
         used := 99.0;
         Nkobs.tick obs));
  Testbed.run tb ~until:0.3;
  Alcotest.(check int) "subscriber ran once" 1 !reacted;
  Alcotest.(check int) "spawn_nsm grew the pool" 2 (Nkctl.pool_size ctl);
  Alcotest.(check int) "handover recorded" 1 (Nkctl.stats ctl).Nkctl.handovers;
  (* The source NSM drains once nothing calls it home; the fresh spawn is
     the one serving. *)
  match Nkctl.active_nsms ctl with
  | [ fresh ] -> Alcotest.(check string) "fresh NSM serving" "nsm1" (Nsm.name fresh)
  | l -> Alcotest.failf "expected 1 active NSM, got %d" (List.length l)

(* ---- Mon_report surfaces dropped_events ----------------------------------- *)

let mon_report_dropped_note () =
  let tb =
    Testbed.create
      ~config:
        { Testbed.Config.default with trace_enabled = true; trace_capacity = Some 8 }
      ()
  in
  let clean = Experiments.Mon_report.table tb.Testbed.mon in
  Alcotest.(check (list string)) "no note while nothing dropped" [] clean.Experiments.Report.notes;
  for i = 1 to 40 do
    Nkmon.event tb.Testbed.mon
      (Nkmon.Trace.Custom { component = "test"; name = "e"; detail = string_of_int i })
  done;
  let r = Experiments.Mon_report.table tb.Testbed.mon in
  (match r.Experiments.Report.notes with
  | [ note ] ->
      Alcotest.(check bool) "note names the dropped count" true
        (contains ~affix:"dropped 32 events" note)
  | l -> Alcotest.failf "expected 1 note, got %d" (List.length l));
  (* The registry row version of the same truth (what --format json shows). *)
  let row =
    List.find_opt
      (fun row -> List.nth row 0 = "nkmon" && List.nth row 2 = "dropped_events")
      r.Experiments.Report.rows
  in
  match row with
  | Some cells -> Alcotest.(check string) "dropped_events row value" "32" (List.nth cells 3)
  | None -> Alcotest.fail "no nkmon/trace/dropped_events row"

(* ---- span ids are host-unique cluster-wide (satellite: Nkspan) ------------ *)

let span_ids_host_unique () =
  let tb, cluster, nodea, nodeb, _nsma, _nsmb = mk_cluster ~span_every:1 ~seed:5 () in
  let vm0 = Nkfabric.place_vm cluster ~name:"srv0" ~vcpus:1 ~ips:[ 10 ] () in
  let vm1 = Nkfabric.place_vm cluster ~name:"srv1" ~vcpus:1 ~ips:[ 11 ] () in
  let client = add_client tb in
  let ops0 = ref 0 and ops1 = ref 0 in
  serve_kv tb vm0 (Addr.make 10 6379);
  serve_kv tb vm1 (Addr.make 11 6379);
  start_pump tb client (Addr.make 10 6379) ~ops:ops0;
  start_pump tb client (Addr.make 11 6379) ~ops:ops1;
  Testbed.run tb ~until:0.3;
  if !ops0 = 0 || !ops1 = 0 then Alcotest.fail "no traffic";
  let sa = Nkfabric.node_spans nodea and sb = Nkfabric.node_spans nodeb in
  Alcotest.(check int) "nodeA host index" 1 (Nkspan.host_index sa);
  Alcotest.(check int) "nodeB host index" 2 (Nkspan.host_index sb);
  let ids spans = List.map Nkspan.span_id (Nkspan.finished_spans spans) in
  let ids_a = ids sa and ids_b = ids sb in
  Alcotest.(check bool) "both nodes collected spans" true (ids_a <> [] && ids_b <> []);
  List.iter
    (fun id ->
      Alcotest.(check int) "nodeA id carries host index 1" 1 (id lsr Nkspan.seq_bits))
    ids_a;
  List.iter
    (fun id ->
      Alcotest.(check int) "nodeB id carries host index 2" 2 (id lsr Nkspan.seq_bits))
    ids_b;
  let all = List.sort_uniq Int.compare (ids_a @ ids_b) in
  Alcotest.(check int) "ids unique cluster-wide"
    (List.length ids_a + List.length ids_b)
    (List.length all)

(* ---- spine stage reconciles across a live migration (satellite) ----------- *)

let spine_stage_reconciles () =
  let tb, cluster, nodea, nodeb, nsma, _nsmb = mk_cluster ~span_every:1 ~seed:11 () in
  let vm = Nkfabric.place_vm cluster ~name:"srv0" ~vcpus:1 ~ips:[ 10 ] () in
  let client = add_client tb in
  let ops = ref 0 in
  serve_kv tb vm (Addr.make 10 6379);
  start_pump tb client (Addr.make 10 6379) ~ops;
  let ops_at_cut = ref 0 in
  ignore
    (E.schedule tb.Testbed.engine ~delay:0.2 (fun () ->
         ignore (Nkfabric.migrate_nsm cluster ~nsm:nsma ~dst:nodeb ());
         ops_at_cut := !ops));
  Testbed.run tb ~until:0.8;
  if !ops <= !ops_at_cut || !ops_at_cut = 0 then
    Alcotest.fail "connection did not keep serving across the migration";
  (* Spans are minted (and the spine stage recorded) on the home node. *)
  let spans = Nkfabric.node_spans nodea in
  let b = Nkspan.breakdown spans in
  Alcotest.(check bool) "spans collected" true (b.Nkspan.b_spans > 50);
  (match List.assoc_opt "spine" b.Nkspan.b_stages with
  | Some h -> Alcotest.(check bool) "spine stage recorded" true (H.count h > 0)
  | None -> Alcotest.fail "no spine stage in the breakdown");
  let e2e = H.mean b.Nkspan.b_e2e in
  let stage_sum =
    List.fold_left (fun acc (_, h) -> acc +. H.mean h) 0.0 b.Nkspan.b_stages
  in
  Alcotest.(check bool) "stage means reconcile with e2e through the spine" true
    (Float.abs (stage_sum -. e2e) <= 1e-9 *. Float.max 1.0 e2e)

let tests =
  [
    Alcotest.test_case "federation: host tags + merged trace" `Quick federation_host_tags;
    Alcotest.test_case "federation exports deterministic" `Quick federation_deterministic;
    Alcotest.test_case "SLO windows: breach, recovery, min_requests" `Quick slo_windows;
    Alcotest.test_case "pressure rules edge-triggered" `Quick pressure_rules_edge_triggered;
    Alcotest.test_case "dropped-events alerts edge-triggered" `Quick dropped_events_alerts;
    Alcotest.test_case "flight dumps byte-identical" `Quick flight_dumps_deterministic;
    Alcotest.test_case "alert drives Nkctl spawn + handover" `Quick alert_drives_nkctl;
    Alcotest.test_case "Mon_report surfaces dropped_events" `Quick mon_report_dropped_note;
    Alcotest.test_case "span ids host-unique cluster-wide" `Quick span_ids_host_unique;
    Alcotest.test_case "spine stage reconciles across migration" `Quick spine_stage_reconciles;
  ]
