(* Fixture coverage for the nkscope typedtree analyzer (tools/nkscope).
   Each fixture is typed in-process (Parse -> Typemod against the real
   stdlib env) and fed to [Nkscope_core.unit_of_structure]/[analyze], so
   the tests exercise exactly the pipeline the @lint rule runs over the
   build's .cmt files — minus only the cmt (de)serialization. *)

module S = Nkscope_core

let init =
  lazy
    (Clflags.dont_write_files := true;
     Compmisc.init_path ())

let typecheck ~path src =
  Lazy.force init;
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  let ast = Parse.implementation lexbuf in
  let env = Compmisc.initial_env () in
  match Typemod.type_structure env ast with
  | str, _, _, _, _ -> str
  | exception exn ->
      let msg =
        let buf = Buffer.create 256 in
        let fmt = Format.formatter_of_buffer buf in
        (* [Location.report_exception] re-raises anything it has no printer
           for; fall back to the raw exception name. *)
        (try Location.report_exception fmt exn
         (* nklint: swallow-ok *)
         with _ -> Format.pp_print_string fmt (Printexc.to_string exn));
        Format.pp_print_flush fmt ();
        Buffer.contents buf
      in
      Alcotest.failf "fixture failed to type: %s" msg

let scope ?(path = "lib/fix.ml") ?(name = "Fix") src =
  let str = typecheck ~path src in
  S.analyze [ S.unit_of_structure ~file:path ~src ~name str ]

let check_diags what expected ?path ?name src =
  let got = List.map (fun d -> (d.S.rule, d.S.line)) (scope ?path ?name src) in
  Alcotest.(check (list (pair string int))) what expected got

(* ---- T1: transitive determinism taint ---------------------------------- *)

let t1_two_hop () =
  check_diags "two-hop chain flags the helper and its caller"
    [ ("T1", 1); ("T1", 2) ]
    ("let helper () = Sys.time ()\n" ^ "let outer () = helper () +. 1.0\n"
   ^ "let clean x = x + 1\n");
  check_diags "clean unit is silent" [] "let f x = x + 1\nlet g () = f 2\n"

let t1_function_as_value () =
  check_diags "taint follows a function passed as a value"
    [ ("T1", 1); ("T1", 2); ("T1", 3) ]
    ("let helper () = Sys.time ()\n" ^ "let by_value = [ helper ]\n"
   ^ "let user () = List.hd by_value\n")

let t1_random () =
  check_diags "ambient Random taints transitively"
    [ ("T1", 1); ("T1", 2) ]
    "let roll () = Random.int 6\nlet pick xs = List.nth xs (roll ())\n"

let t1_waiver () =
  (* The waiver covers exactly its function: callers still reach the source
     and must be waived (or fixed) on their own. *)
  check_diags "nondet-ok waives the marked binding only"
    [ ("T1", 3) ]
    ("(* nkscope: nondet-ok *)\n" ^ "let helper () = Sys.time ()\n"
   ^ "let outer () = helper ()\n")

(* ---- O1: shard-ownership discipline ------------------------------------ *)

let o1_base =
  "type shard = { idx : int }\n" (* 1 *) ^ "type costs = { ce_xshard : int }\n" (* 2 *)
  ^ "type t = { conn_table : (int, int) Hashtbl.t; costs : costs }\n" (* 3 *)
  ^ "let charge_xshard t (sh : shard) = ignore sh; ignore t.costs.ce_xshard\n" (* 4 *)
  ^ "let good_add t (sh : shard) k v = charge_xshard t sh; Hashtbl.replace t.conn_table k v\n"
    (* 5 *)
  ^ "let bad_add t (sh : shard) k v = ignore sh; Hashtbl.replace t.conn_table k v\n" (* 6 *)
  ^ "let helper_write t k v = Hashtbl.replace t.conn_table k v\n" (* 7 *)
  ^ "let sweep t (sh : shard) k v = ignore sh; helper_write t k v\n" (* 8 *)
  ^ "let control_clear t = Hashtbl.reset t.conn_table\n" (* 9 *)

let o1_discipline () =
  (* bad_add writes from shard context without charging; helper_write has no
     shard parameter itself but is called from one (sweep), so its write is
     in shard context transitively. good_add reaches charge_xshard and
     control_clear never runs in shard context: both legal. *)
  check_diags "shard-context writes without the xshard charge are flagged"
    [ ("O1", 6); ("O1", 7) ]
    o1_base

let o1_waiver () =
  check_diags "ce-owner waives a deliberate owner-shard accessor" []
    ("type shard = { idx : int }\n" ^ "type t = { conn_table : (int, int) Hashtbl.t }\n"
   ^ "(* nkscope: ce-owner *)\n"
   ^ "let bad_add t (sh : shard) k v = ignore sh; Hashtbl.replace t.conn_table k v\n");
  check_diags "without the waiver the same write is flagged"
    [ ("O1", 3) ]
    ("type shard = { idx : int }\n" ^ "type t = { conn_table : (int, int) Hashtbl.t }\n"
   ^ "let bad_add t (sh : shard) k v = ignore sh; Hashtbl.replace t.conn_table k v\n")

(* ---- M1: migration snapshot completeness ------------------------------- *)

let m1_unsnapshotted_field () =
  (* The Tcb.t shape in miniature: a mutable field the snapshot forgets, a
     mutable field inside a record reachable through a Queue, and immutable
     fields that impose nothing. *)
  check_diags "mutable field missing from snapshot is flagged"
    [ ("M1", 2) ]
    ("type item = { mutable seq : int; tag : bool }\n" (* 1 *)
   ^ "type t = { name : string; mutable a : int; mutable missing : int; q : item Queue.t }\n"
     (* 2 *)
   ^ "let snapshot t = (t.a, t.name, Queue.fold (fun acc (i : item) -> i.seq :: acc) [] t.q)\n"
   ^ "let restore (a, name, seqs) =\n" ^ "  let q = Queue.create () in\n"
   ^ "  List.iter (fun s -> Queue.add { seq = s; tag = false } q) seqs;\n"
   ^ "  { name; a; missing = 0; q }\n")

let m1_complete () =
  check_diags "full coverage is silent" []
    ("type t = { mutable a : int; mutable b : int }\n"
   ^ "let snapshot t = (t.a, t.b)\n" ^ "let restore (a, b) = { a; b }\n")

let m1_restore_gap () =
  (* A restore that patches fields onto an externally built value must cover
     every mutable slot — here [b] is never written back. *)
  check_diags "mutable field missing from restore is flagged"
    [ ("M1", 1) ]
    ("type t = { mutable a : int; mutable b : int }\n"
   ^ "let snapshot t = (t.a, t.b)\n"
   ^ "let restore ext ((a, _b) : int * int) = let t : t = ext () in t.a <- a; t\n")

let m1_volatile_waiver () =
  check_diags "volatile waives a rebuilt-at-destination field" []
    ("type t = {\n" ^ "  mutable a : int;\n" ^ "  (* nkscope: volatile *)\n"
   ^ "  mutable missing : int;\n" ^ "}\n" ^ "let snapshot t = t.a\n"
   ^ "let restore a = { a; missing = 0 }\n")

let m1_export_import () =
  (* CC-module shape: the export/import closures must cover every mutable
     field of the local state record. *)
  check_diags "uncovered CC state field is flagged for both closures"
    [ ("M1", 2); ("M1", 2) ]
    ("type cc = { name : string; export : unit -> int; import : int -> unit }\n" (* 1 *)
   ^ "type st = { mutable cwnd : int; mutable uncovered : int }\n" (* 2 *)
   ^ "let create () =\n" ^ "  let s = { cwnd = 1; uncovered = 0 } in\n"
   ^ "  { name = \"x\"; export = (fun () -> s.cwnd); import = (fun v -> s.cwnd <- v) }\n")

(* ---- W1: waivers cannot rot -------------------------------------------- *)

let w1_stale_and_unknown () =
  check_diags "stale waiver is reported" [ ("W1", 1) ]
    "(* nkscope: ce-owner *)\nlet f x = x + 1\n";
  check_diags "unknown token is reported" [ ("W1", 1) ]
    "(* nkscope: bogus *)\nlet f x = x + 1\n";
  check_diags "token inside a string literal is fixture text, not a waiver" []
    "let s = \"(* nkscope: volatile *)\"\n"

(* ---- JSON output ------------------------------------------------------- *)

let json_format () =
  let d = { S.file = "lib/a.ml"; line = 3; col = 7; rule = "O1"; msg = "say \"hi\"\n" } in
  Alcotest.(check string)
    "escaping"
    "{\"file\":\"lib/a.ml\",\"line\":3,\"col\":7,\"rule\":\"O1\",\"msg\":\"say \\\"hi\\\"\\n\"}"
    (S.to_json d);
  Alcotest.(check string) "empty array" "[]" (S.to_json_array [])

let tests =
  [
    Alcotest.test_case "t1-two-hop" `Quick t1_two_hop;
    Alcotest.test_case "t1-function-as-value" `Quick t1_function_as_value;
    Alcotest.test_case "t1-random" `Quick t1_random;
    Alcotest.test_case "t1-waiver" `Quick t1_waiver;
    Alcotest.test_case "o1-discipline" `Quick o1_discipline;
    Alcotest.test_case "o1-waiver" `Quick o1_waiver;
    Alcotest.test_case "m1-unsnapshotted-field" `Quick m1_unsnapshotted_field;
    Alcotest.test_case "m1-complete" `Quick m1_complete;
    Alcotest.test_case "m1-restore-gap" `Quick m1_restore_gap;
    Alcotest.test_case "m1-volatile-waiver" `Quick m1_volatile_waiver;
    Alcotest.test_case "m1-export-import" `Quick m1_export_import;
    Alcotest.test_case "w1-stale-and-unknown" `Quick w1_stale_and_unknown;
    Alcotest.test_case "json-format" `Quick json_format;
  ]
