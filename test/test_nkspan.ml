(* Nkspan request-path tracing (DESIGN.md par.12): span id uniqueness and
   stage ordering through a real multi-shard datapath, HDR percentile
   accuracy against an exact-sort oracle, and byte-identical catapult
   export across identical seeded runs. *)

module W = Experiments.Worlds
module H = Nkutil.Histogram

let run_world ~seed ~ce_cores ~span_every =
  let w =
    W.netkernel
      ~config:
        (W.Config.with_seed seed
           (W.Config.with_span_every span_every { W.Config.default with ce_cores }))
      ()
  in
  let r = W.measure_rps w ~concurrency:16 ~total:1_500 () in
  Alcotest.(check int) "no request errors" 0 r.W.errors;
  w.W.tb.Nkcore.Testbed.spans

(* ---- span id uniqueness + stage ordering ------------------------------- *)

let check_spans ~ce_cores () =
  let spans = run_world ~seed:42 ~ce_cores ~span_every:4 in
  let finished = Nkspan.finished_spans spans in
  Alcotest.(check bool)
    (Printf.sprintf "spans collected at %d shards" ce_cores)
    true
    (List.length finished > 50);
  (* Ids are positive and unique (creation order is strictly increasing). *)
  let ids = List.map Nkspan.span_id finished in
  List.iter (fun id -> Alcotest.(check bool) "id > 0" true (id > 0)) ids;
  let rec strictly_increasing = function
    | a :: (b :: _ as tl) -> a < b && strictly_increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "ids unique and ordered" true (strictly_increasing ids);
  (* Every span's segments are chronological, non-overlapping, inside the
     span's lifetime, and drawn from the canonical taxonomy; the request
     path starts in guestlib, crosses the CE at least once, and ends with
     completion delivery. *)
  List.iter
    (fun sp ->
      let segs = Nkspan.span_segs sp in
      Alcotest.(check bool) "span has segments" true (segs <> []);
      let birth = Nkspan.span_birth sp and fin = Nkspan.span_finish sp in
      Alcotest.(check bool) "finish after birth" true (fin > birth);
      let eps = 1e-12 in
      let rec walk prev_t1 = function
        | [] -> ()
        | s :: tl ->
            Alcotest.(check bool)
              ("known stage: " ^ s.Nkspan.g_stage)
              true
              (List.mem s.Nkspan.g_stage Nkspan.stage_order);
            Alcotest.(check bool) "seg interval well-formed" true
              (s.Nkspan.g_t1 +. eps >= s.Nkspan.g_t0);
            Alcotest.(check bool) "segs non-overlapping, chronological" true
              (s.Nkspan.g_t0 +. eps >= prev_t1);
            Alcotest.(check bool) "seg inside span lifetime" true
              (s.Nkspan.g_t0 +. eps >= birth && fin +. eps >= s.Nkspan.g_t1);
            walk s.Nkspan.g_t1 tl
      in
      walk birth segs;
      let stages = List.map (fun s -> s.Nkspan.g_stage) segs in
      Alcotest.(check string) "path starts in guestlib" "guestlib" (List.hd stages);
      Alcotest.(check bool) "path crosses the CE" true (List.mem "ce-switch" stages);
      Alcotest.(check string) "path ends with completion delivery" "completion"
        (List.nth stages (List.length stages - 1)))
    finished;
  (* Reconciliation: per-stage means sum exactly to the end-to-end mean —
     the ring bucket absorbs every unclaimed instant by construction. *)
  let b = Nkspan.breakdown spans in
  let e2e = H.mean b.Nkspan.b_e2e in
  let stage_sum =
    List.fold_left (fun acc (_, h) -> acc +. H.mean h) 0.0 b.Nkspan.b_stages
  in
  Alcotest.(check bool) "stage means reconcile with e2e" true
    (Float.abs (stage_sum -. e2e) <= 1e-9 *. Float.max 1.0 e2e);
  Alcotest.(check int) "no spans dropped" 0 (Nkspan.dropped spans)

let spans_2_shards () = check_spans ~ce_cores:2 ()

let spans_4_shards () = check_spans ~ce_cores:4 ()

(* ---- HDR percentile accuracy vs exact-sort oracle ---------------------- *)

let percentile_accuracy () =
  (* A deterministic heavy-tailed sample: mostly microseconds, a tail of
     milliseconds — the shape request latencies actually have. *)
  let rng = Nkutil.Rng.create ~seed:7 in
  let n = 20_000 in
  let values =
    Array.init n (fun _ ->
        let u = Nkutil.Rng.float rng in
        1e-6 *. (1.0 +. (999.0 *. (u ** 4.0))))
  in
  let h = H.create () in
  Array.iter (H.record h) values;
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let oracle p =
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(Int.max 0 (Int.min (n - 1) rank))
  in
  List.iter
    (fun p ->
      let exact = oracle p and approx = H.percentile h p in
      let rel = Float.abs (approx -. exact) /. exact in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within 10%% of exact (got %.3g vs %.3g)" p approx exact)
        true (rel <= 0.10))
    [ 50.0; 90.0; 99.0; 99.9 ]

(* ---- catapult export determinism --------------------------------------- *)

let catapult_deterministic () =
  let dump () = Nkspan.to_catapult (run_world ~seed:4242 ~ce_cores:2 ~span_every:8) in
  let a = dump () in
  let b = dump () in
  Alcotest.(check bool) "catapult non-trivial" true (String.length a > 1000);
  Alcotest.(check string) "catapult byte-identical across same-seed runs" a b

(* ---- sampling + default-off -------------------------------------------- *)

let disabled_by_default () =
  let w = W.netkernel () in
  let spans = w.W.tb.Nkcore.Testbed.spans in
  Alcotest.(check bool) "spans disabled without span_every" false
    (Nkspan.enabled spans);
  ignore (W.measure_rps w ~concurrency:8 ~total:500 ());
  Alcotest.(check int) "no spans collected when disabled" 0 (Nkspan.span_count spans)

let tests =
  [
    Alcotest.test_case "spans at 2 CE shards" `Quick spans_2_shards;
    Alcotest.test_case "spans at 4 CE shards" `Quick spans_4_shards;
    Alcotest.test_case "percentiles vs exact oracle" `Quick percentile_accuracy;
    Alcotest.test_case "catapult export deterministic" `Quick catapult_deterministic;
    Alcotest.test_case "spans off by default" `Quick disabled_by_default;
  ]
