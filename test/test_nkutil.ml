(* Unit and property tests for the utility substrate. *)

module H = Nkutil.Heap
module R = Nkutil.Rng
module Ring = Nkutil.Spsc_ring
module TB = Nkutil.Token_bucket
module Hist = Nkutil.Histogram
module BF = Nkutil.Byte_fifo
module TS = Nkutil.Timeseries

(* ---- heap ----------------------------------------------------------- *)

let heap_sorted_pops () =
  let h = H.create ~dummy:0 ~leq:(fun (a : int) b -> a <= b) () in
  List.iter (H.add h) [ 5; 3; 8; 1; 9; 2; 7; 1 ];
  let rec drain acc =
    match H.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let heap_qcheck =
  QCheck.Test.make ~name:"heap pops are sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = H.create ~dummy:0 ~leq:(fun (a : int) b -> a <= b) () in
      List.iter (H.add h) xs;
      let rec drain acc =
        match H.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let heap_of_floats () =
  (* Regression: unused slots used to be filled with [Obj.magic 0], which is
     unsound for float elements — the backing array uses the unboxed
     flat-float-array representation, so an immediate 0 in a slot corrupts
     it. A tiny initial capacity forces growth (and [grow]'s dummy fill). *)
  let h = H.create ~capacity:1 ~dummy:nan ~leq:(fun (a : float) b -> a <= b) () in
  List.iter (H.add h) [ 3.5; 1.25; 2.75; 0.5; 8.0 ];
  let rec drain acc =
    match H.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list (float 0.0)))
    "sorted floats" [ 0.5; 1.25; 2.75; 3.5; 8.0 ] (drain [])

(* ---- rng ------------------------------------------------------------- *)

let rng_deterministic () =
  let a = R.create ~seed:7 and b = R.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.bits64 a) (R.bits64 b)
  done

let rng_ranges () =
  let rng = R.create ~seed:3 in
  for _ = 1 to 10_000 do
    let f = R.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f;
    let i = R.int rng 17 in
    if i < 0 || i >= 17 then Alcotest.failf "int out of range: %d" i
  done

let rng_exponential_mean () =
  let rng = R.create ~seed:9 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. R.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 4.0) > 0.15 then Alcotest.failf "exp mean off: %f" mean

(* ---- spsc ring --------------------------------------------------------- *)

let ring_fifo () =
  let r = Ring.create ~capacity:8 in
  for i = 1 to 8 do
    Alcotest.(check bool) "push" true (Ring.push r i)
  done;
  Alcotest.(check bool) "full" false (Ring.push r 9);
  for i = 1 to 8 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Ring.pop r)
  done;
  Alcotest.(check (option int)) "empty" None (Ring.pop r)

let ring_qcheck =
  QCheck.Test.make ~name:"ring preserves order under mixed ops" ~count:200
    QCheck.(list (option small_nat))
    (fun ops ->
      (* Some x = push x, None = pop; mirror against a plain Queue. *)
      let r = Ring.create ~capacity:16 in
      let q = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              let pushed = Ring.push r x in
              let fits = Queue.length q < Ring.capacity r in
              if fits then Queue.add x q;
              pushed = fits
          | None -> (
              match (Ring.pop r, Queue.take_opt q) with
              | Some a, Some b -> a = b
              | None, None -> true
              | _ -> false))
        ops)

let ring_batch () =
  let r = Ring.create ~capacity:8 in
  let n = Ring.push_batch r [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check int) "batch accepted" 5 n;
  Alcotest.(check (list int)) "batch pop" [ 1; 2; 3 ] (Ring.pop_batch r ~max:3);
  let buf = Array.make 8 0 in
  Alcotest.(check int) "pop_into" 2 (Ring.pop_into r buf);
  Alcotest.(check int) "pop_into contents" 4 buf.(0)

(* ---- token bucket ------------------------------------------------------- *)

let bucket_rate () =
  let b = TB.create ~rate:100.0 ~burst:10.0 ~now:0.0 in
  Alcotest.(check bool) "burst available" true (TB.try_take b ~now:0.0 10.0);
  Alcotest.(check bool) "empty now" false (TB.try_take b ~now:0.0 1.0);
  (* after 0.05s, 5 tokens accrue *)
  Alcotest.(check bool) "refill partial" true (TB.try_take b ~now:0.05 5.0);
  Alcotest.(check bool) "no over-refill" false (TB.try_take b ~now:0.05 0.5);
  let wait = TB.time_until b ~now:0.05 5.0 in
  if Float.abs (wait -. 0.05) > 1e-9 then Alcotest.failf "time_until wrong: %f" wait

let bucket_burst_cap () =
  let b = TB.create ~rate:100.0 ~burst:10.0 ~now:0.0 in
  ignore (TB.try_take b ~now:0.0 10.0);
  (* long idle: capped at burst *)
  Alcotest.(check bool) "capped" false (TB.try_take b ~now:100.0 10.5);
  Alcotest.(check bool) "burst ok" true (TB.try_take b ~now:100.0 10.0)

(* ---- histogram ------------------------------------------------------------ *)

let histogram_moments () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 0.001; 0.002; 0.003; 0.004; 0.005 ];
  Alcotest.(check int) "count" 5 (Hist.count h);
  if Float.abs (Hist.mean h -. 0.003) > 1e-9 then Alcotest.fail "mean";
  if Float.abs (Hist.min h -. 0.001) > 1e-12 then Alcotest.fail "min";
  if Float.abs (Hist.max h -. 0.005) > 1e-12 then Alcotest.fail "max";
  let med = Hist.median h in
  if med < 0.0029 || med > 0.0032 then Alcotest.failf "median %f" med

let histogram_qcheck =
  QCheck.Test.make ~name:"histogram percentile within relative error" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range 1e-6 100.0))
    (fun xs ->
      let h = Hist.create () in
      List.iter (Hist.record h) xs;
      let sorted = List.sort Float.compare xs in
      let exact p =
        let n = List.length sorted in
        List.nth sorted (Int.min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))
      in
      List.for_all
        (fun p ->
          let approx = Hist.percentile h p in
          let ex = Float.max (exact p) 1e-9 in
          approx >= ex *. 0.9 && approx <= ex *. 1.1)
        [ 50.0; 90.0; 99.0 ])

let histogram_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.record a) [ 0.01; 0.02 ];
  List.iter (Hist.record b) [ 0.03; 0.04 ];
  Hist.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "merged count" 4 (Hist.count a);
  if Float.abs (Hist.mean a -. 0.025) > 1e-9 then Alcotest.fail "merged mean";
  if Float.abs (Hist.max a -. 0.04) > 1e-12 then Alcotest.fail "merged max"

(* copy is independent of the original; diff of two snapshots of a growing
   cumulative histogram recovers the window exactly (count and mean) and
   its percentiles reflect only the window's samples — the rolling-window
   primitive Nkobs SLO accounting is built on. *)
let histogram_copy_diff () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 0.001; 0.002 ];
  let snap = Hist.copy h in
  List.iter (Hist.record h) [ 0.040; 0.050; 0.060 ];
  Alcotest.(check int) "copy frozen at snapshot" 2 (Hist.count snap);
  let w = Hist.diff ~newer:h ~older:snap in
  Alcotest.(check int) "window count" 3 (Hist.count w);
  if Float.abs (Hist.mean w -. 0.050) > 1e-9 then
    Alcotest.failf "window mean %f" (Hist.mean w);
  (* The window's p50 sits in the new samples' range, far from the old
     fast samples the diff subtracted out. *)
  let p50 = Hist.percentile w 50.0 in
  if p50 < 0.030 then Alcotest.failf "window p50 %f contaminated by old samples" p50;
  (* Empty window: diffing a snapshot against itself. *)
  let z = Hist.diff ~newer:(Hist.copy h) ~older:(Hist.copy h) in
  Alcotest.(check int) "empty window count" 0 (Hist.count z);
  (* Incompatible geometries are rejected rather than silently misbinned. *)
  (match Hist.diff ~newer:(Hist.create ~sub_buckets:8 ()) ~older:(Hist.create ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "diff accepted incompatible geometries");
  (* A shrinking counter (newer missing older's samples) is a caller bug. *)
  match Hist.diff ~newer:snap ~older:h with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "diff accepted a non-superset newer"

(* ---- byte fifo ----------------------------------------------------------- *)

let byte_fifo_content () =
  let f = BF.create () in
  BF.write f "hello ";
  BF.write f "world";
  Alcotest.(check int) "len" 11 (BF.length f);
  Alcotest.(check string) "read across chunks" "hello wor" (BF.read f 9);
  Alcotest.(check string) "rest" "ld" (BF.read f 10)

let byte_fifo_zero_runs () =
  let f = BF.create () in
  BF.write_zeros f 100;
  BF.write_zeros f 50;
  (* consecutive runs coalesce *)
  (match BF.next_run f with
  | Some (`Zeros 150) -> ()
  | Some (`Zeros n) -> Alcotest.failf "run not coalesced: %d" n
  | _ -> Alcotest.fail "expected zeros run");
  BF.write f "abc";
  BF.write_zeros f 7;
  Alcotest.(check int) "discard run" 150 (BF.discard f 150);
  Alcotest.(check string) "data after zeros" "abc" (BF.read f 3);
  match BF.next_run f with
  | Some (`Zeros 7) -> ()
  | _ -> Alcotest.fail "trailing zeros intact"

let byte_fifo_zero_coalesce_after_drain () =
  (* Regression: a fully-drained zero-run must not be resurrected. *)
  let f = BF.create () in
  BF.write_zeros f 10;
  Alcotest.(check int) "drain" 10 (BF.discard f 10);
  BF.write_zeros f 5;
  Alcotest.(check int) "new run readable" 5 (BF.discard f 5);
  Alcotest.(check int) "empty" 0 (BF.length f)

let byte_fifo_transfer () =
  let a = BF.create () and b = BF.create () in
  BF.write a "xyz";
  BF.write_zeros a 5;
  Alcotest.(check int) "moved" 6 (BF.transfer ~src:a ~dst:b 6);
  Alcotest.(check int) "src left" 2 (BF.length a);
  Alcotest.(check string) "dst data" "xyz" (BF.read b 3);
  match BF.next_run b with
  | Some (`Zeros 3) -> ()
  | _ -> Alcotest.fail "zeros preserved compactly"

let byte_fifo_qcheck =
  QCheck.Test.make ~name:"byte fifo equals reference string" ~count:200
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let f = BF.create () in
      let model = Buffer.create 64 in
      let out_f = Buffer.create 64 and out_m = Buffer.create 64 in
      List.iter
        (fun (is_write, n) ->
          if is_write then begin
            let s = String.init (n mod 17) (fun i -> Char.chr (65 + (i mod 26))) in
            BF.write f s;
            Buffer.add_string model s
          end
          else begin
            let got = BF.read f n in
            Buffer.add_string out_f got;
            let avail = Buffer.length model in
            let take = Int.min n avail in
            Buffer.add_string out_m (Buffer.sub model 0 take);
            let rest = Buffer.sub model take (avail - take) in
            Buffer.clear model;
            Buffer.add_string model rest
          end)
        ops;
      Buffer.contents out_f = Buffer.contents out_m)

(* ---- timeseries ------------------------------------------------------------ *)

let timeseries_bins () =
  let ts = TS.create ~bin_width:0.1 () in
  TS.add ts ~time:0.05 1.0;
  TS.add ts ~time:0.07 2.0;
  TS.add ts ~time:0.25 4.0;
  Alcotest.(check int) "bins" 3 (TS.num_bins ts);
  if TS.get ts 0 <> 3.0 then Alcotest.fail "bin 0";
  if TS.get ts 1 <> 0.0 then Alcotest.fail "bin 1";
  if TS.get ts 2 <> 4.0 then Alcotest.fail "bin 2";
  if Float.abs (TS.rate ts 2 -. 40.0) > 1e-9 then Alcotest.fail "rate"

(* ---- stats -------------------------------------------------------------------- *)

let stats_jain () =
  if Float.abs (Nkutil.Stats.jain_fairness [| 5.0; 5.0 |] -. 1.0) > 1e-9 then
    Alcotest.fail "equal shares";
  let skew = Nkutil.Stats.jain_fairness [| 9.0; 1.0 |] in
  if skew > 0.62 || skew < 0.60 then Alcotest.failf "jain skew %f" skew

let tests =
  [
    Alcotest.test_case "heap sorted pops" `Quick heap_sorted_pops;
    QCheck_alcotest.to_alcotest heap_qcheck;
    Alcotest.test_case "heap of floats (Obj.magic regression)" `Quick heap_of_floats;
    Alcotest.test_case "rng determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng ranges" `Quick rng_ranges;
    Alcotest.test_case "rng exponential mean" `Quick rng_exponential_mean;
    Alcotest.test_case "ring FIFO + capacity" `Quick ring_fifo;
    QCheck_alcotest.to_alcotest ring_qcheck;
    Alcotest.test_case "ring batch ops" `Quick ring_batch;
    Alcotest.test_case "token bucket rate" `Quick bucket_rate;
    Alcotest.test_case "token bucket burst cap" `Quick bucket_burst_cap;
    Alcotest.test_case "histogram moments" `Quick histogram_moments;
    QCheck_alcotest.to_alcotest histogram_qcheck;
    Alcotest.test_case "histogram merge" `Quick histogram_merge;
    Alcotest.test_case "histogram copy/diff windows" `Quick histogram_copy_diff;
    Alcotest.test_case "byte fifo content" `Quick byte_fifo_content;
    Alcotest.test_case "byte fifo zero runs" `Quick byte_fifo_zero_runs;
    Alcotest.test_case "byte fifo coalesce-after-drain" `Quick
      byte_fifo_zero_coalesce_after_drain;
    Alcotest.test_case "byte fifo transfer" `Quick byte_fifo_transfer;
    QCheck_alcotest.to_alcotest byte_fifo_qcheck;
    Alcotest.test_case "timeseries bins" `Quick timeseries_bins;
    Alcotest.test_case "jain fairness" `Quick stats_jain;
  ]
