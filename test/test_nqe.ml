(* NQE codec and hugepage allocator unit + property tests. *)

open Nkcore
module Types = Tcpstack.Types

let all_ops =
  [
    Nqe.Socket; Nqe.Bind; Nqe.Listen; Nqe.Connect; Nqe.Send; Nqe.Recv_done; Nqe.Close;
    Nqe.Comp_socket; Nqe.Comp_bind; Nqe.Comp_listen; Nqe.Comp_connect; Nqe.Comp_send;
    Nqe.Comp_close; Nqe.Ev_accept; Nqe.Ev_data; Nqe.Ev_eof; Nqe.Ev_err;
  ]

let roundtrip_all_ops () =
  List.iter
    (fun op ->
      let nqe =
        Nqe.make ~op ~vm_id:7 ~qset:3 ~sock:123456 ~op_data:0x1234_5678_9ABCL
          ~data_ptr:987654 ~size:4096 ~synthetic:true ()
      in
      let buf = Nqe.encode nqe in
      Alcotest.(check int) "32 bytes" Nqe.size_bytes (Bytes.length buf);
      match Nqe.decode buf with
      | Error e -> Alcotest.failf "decode failed for %s: %s" (Nqe.op_to_string op) e
      | Ok d ->
          Alcotest.(check bool) "op" true (d.Nqe.op = op);
          Alcotest.(check int) "vm_id" 7 d.Nqe.vm_id;
          Alcotest.(check int) "qset" 3 d.Nqe.qset;
          Alcotest.(check int) "sock" 123456 d.Nqe.sock;
          Alcotest.(check int64) "op_data" 0x1234_5678_9ABCL d.Nqe.op_data;
          Alcotest.(check int) "data_ptr" 987654 d.Nqe.data_ptr;
          Alcotest.(check int) "size" 4096 d.Nqe.size;
          Alcotest.(check bool) "synthetic" true d.Nqe.synthetic)
    all_ops

let decode_garbage () =
  (match Nqe.decode (Bytes.make 32 '\xEE') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage op byte must not decode");
  match Nqe.decode (Bytes.create 10) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short buffer must not decode"

let addr_packing () =
  let a = Addr.make 192168001 65535 in
  let packed = Nqe.pack_addr a in
  let b = Nqe.unpack_addr packed in
  Alcotest.(check bool) "addr roundtrip" true (Addr.equal a b)

let err_codes () =
  List.iter
    (fun e ->
      match Nqe.err_of_code (Nqe.err_code e) with
      | Some e' when e = e' -> ()
      | Some e' ->
          Alcotest.failf "err roundtrip: %s became %s" (Types.err_to_string e)
            (Types.err_to_string e')
      | None -> Alcotest.failf "err %s decoded as success" (Types.err_to_string e))
    [
      Types.Econnrefused; Types.Econnreset; Types.Etimedout; Types.Eaddrinuse;
      Types.Einval; Types.Enotconn; Types.Eclosed; Types.Eagain; Types.Enobufs;
    ];
  Alcotest.(check bool) "0 is success" true (Nqe.err_of_code Nqe.ok_code = None)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"nqe field roundtrip" ~count:500
    QCheck.(
      quad (int_bound 255) (int_bound 254) (int_bound ((1 lsl 30) - 1)) (int_bound 1_000_000))
    (fun (vm_id, qset, sock, size) ->
      let nqe = Nqe.make ~op:Nqe.Send ~vm_id ~qset ~sock ~data_ptr:(size * 3) ~size () in
      match Nqe.decode (Nqe.encode nqe) with
      | Error _ -> false
      | Ok d ->
          d.Nqe.vm_id = vm_id && d.Nqe.qset = qset && d.Nqe.sock = sock
          && d.Nqe.size = size
          && d.Nqe.data_ptr = size * 3)

(* ---- zero-allocation views ---------------------------------------------- *)

(* Nqe.View is the hot path's flat accessor layer over the same 32 wire
   bytes; every field it exposes must agree with the full decoder on every
   opcode (and on span-stamped / edge-value records). *)
let view_equals_decode () =
  let check_one nqe =
    let raw = Nqe.encode nqe in
    Alcotest.(check bool) "View.ok" true (Nqe.View.ok raw);
    match Nqe.decode raw with
    | Error e -> Alcotest.failf "decode failed: %s" e
    | Ok d ->
        Alcotest.(check bool)
          (Printf.sprintf "op %s" (Nqe.op_to_string d.Nqe.op))
          true
          (Nqe.View.op raw = d.Nqe.op);
        Alcotest.(check int) "vm_id" d.Nqe.vm_id (Nqe.View.vm_id raw);
        Alcotest.(check int) "qset" d.Nqe.qset (Nqe.View.qset raw);
        Alcotest.(check int) "sock" d.Nqe.sock (Nqe.View.sock raw);
        Alcotest.(check int64) "op_data" d.Nqe.op_data (Nqe.View.op_data raw);
        Alcotest.(check int) "data_ptr" d.Nqe.data_ptr (Nqe.View.data_ptr raw);
        Alcotest.(check int) "size" d.Nqe.size (Nqe.View.size raw);
        Alcotest.(check bool) "synthetic" d.Nqe.synthetic (Nqe.View.synthetic raw);
        Alcotest.(check int) "span" d.Nqe.span (Nqe.View.span raw)
  in
  List.iter
    (fun op ->
      check_one
        (Nqe.make ~op ~vm_id:7 ~qset:3 ~sock:123456 ~op_data:0x1234_5678_9ABCL
           ~data_ptr:987654 ~size:4096 ~synthetic:true ());
      check_one (Nqe.make ~op ~vm_id:0 ~qset:0 ~sock:0 ());
      check_one
        (Nqe.make ~op ~vm_id:255 ~qset:Nqe.qset_unassigned
           ~sock:((1 lsl 31) - 1)
           ~op_data:Int64.min_int
           ~data_ptr:((1 lsl 40) - 1)
           ~size:((1 lsl 31) - 1)
           ~span:((1 lsl 31) - 1)
           ()))
    all_ops;
  (* View.ok mirrors decode's rejections. *)
  Alcotest.(check bool) "garbage op" false (Nqe.View.ok (Bytes.make 32 '\xEE'));
  Alcotest.(check bool) "short buffer" false (Nqe.View.ok (Bytes.create 10))

let view_set_qset () =
  let raw = Nqe.encode (Nqe.make ~op:Nqe.Ev_accept ~vm_id:9 ~qset:Nqe.qset_unassigned ~sock:5 ()) in
  Nqe.View.set_qset raw 17;
  Alcotest.(check int) "patched qset" 17 (Nqe.View.qset raw);
  match Nqe.decode raw with
  | Ok d -> Alcotest.(check int) "decoder sees the patch" 17 d.Nqe.qset
  | Error e -> Alcotest.failf "decode after patch: %s" e

let qcheck_view_equivalence =
  QCheck.Test.make ~name:"view/decode equivalence (random fields)" ~count:500
    QCheck.(
      quad (int_bound 255) (int_bound 254) (int_bound ((1 lsl 30) - 1)) (int_bound 1_000_000))
    (fun (vm_id, qset, sock, size) ->
      let op = List.nth all_ops (sock mod List.length all_ops) in
      let raw =
        Nqe.encode
          (Nqe.make ~op ~vm_id ~qset ~sock ~op_data:(Int64.of_int (size * 7))
             ~data_ptr:(size * 3) ~size ~span:(sock lxor size) ())
      in
      match Nqe.decode raw with
      | Error _ -> false
      | Ok d ->
          Nqe.View.ok raw && Nqe.View.op raw = d.Nqe.op
          && Nqe.View.vm_id raw = d.Nqe.vm_id
          && Nqe.View.qset raw = d.Nqe.qset
          && Nqe.View.sock raw = d.Nqe.sock
          && Nqe.View.op_data raw = d.Nqe.op_data
          && Nqe.View.data_ptr raw = d.Nqe.data_ptr
          && Nqe.View.size raw = d.Nqe.size
          && Nqe.View.synthetic raw = d.Nqe.synthetic
          && Nqe.View.span raw = d.Nqe.span)

(* ---- hugepages ---------------------------------------------------------- *)

let hp_alloc_free () =
  let hp = Hugepages.create ~page_size:4096 ~pages:4 () in
  Alcotest.(check int) "capacity" (4 * 4096) (Hugepages.capacity hp);
  let e1 = Option.get (Hugepages.alloc hp 1000) in
  let e2 = Option.get (Hugepages.alloc hp 2000) in
  Alcotest.(check bool) "disjoint" true
    (e1.Hugepages.offset + 1024 <= e2.Hugepages.offset
    || e2.Hugepages.offset + 2048 <= e1.Hugepages.offset);
  Hugepages.free hp e1;
  Hugepages.free hp e2;
  Alcotest.(check int) "all returned" 0 (Hugepages.bytes_in_use hp);
  (* After full free we can allocate the whole region again. *)
  match Hugepages.alloc hp (4 * 4096) with
  | Some e -> Hugepages.free hp e
  | None -> Alcotest.fail "coalescing failed: full-size alloc rejected"

let hp_double_free () =
  let hp = Hugepages.create ~page_size:4096 ~pages:1 () in
  let e = Option.get (Hugepages.alloc hp 128) in
  Hugepages.free hp e;
  match Hugepages.free hp e with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double free not detected"

let hp_exhaustion () =
  let hp = Hugepages.create ~page_size:4096 ~pages:1 () in
  let e = Option.get (Hugepages.alloc hp 4000) in
  (match Hugepages.alloc hp 1024 with
  | None -> ()
  | Some _ -> Alcotest.fail "allocation should fail when full");
  Hugepages.free hp e

let hp_payload_roundtrip () =
  let hp = Hugepages.create ~page_size:4096 ~pages:2 () in
  let e = Option.get (Hugepages.alloc hp 64) in
  Hugepages.write_payload hp e (Types.Data "hello hugepages");
  (match Hugepages.read_payload hp e ~pos:0 ~len:15 ~synthetic:false with
  | Types.Data s -> Alcotest.(check string) "content" "hello hugepages" s
  | Types.Zeros _ -> Alcotest.fail "expected data");
  (match Hugepages.read_payload hp e ~pos:6 ~len:4 ~synthetic:false with
  | Types.Data s -> Alcotest.(check string) "slice" "huge" s
  | Types.Zeros _ -> Alcotest.fail "expected data");
  match Hugepages.read_payload hp e ~pos:0 ~len:64 ~synthetic:true with
  | Types.Zeros 64 -> Hugepages.free hp e
  | Types.Zeros _ | Types.Data _ -> Alcotest.fail "synthetic read should be Zeros 64"

let qcheck_allocator =
  (* Random alloc/free interleavings: live extents never overlap, and
     accounting is exact. *)
  QCheck.Test.make ~name:"hugepage allocator invariants" ~count:100
    QCheck.(list (int_range 1 5000))
    (fun sizes ->
      let hp = Hugepages.create ~page_size:65536 ~pages:4 () in
      let live = ref [] in
      let ok = ref true in
      List.iteri
        (fun i size ->
          if i mod 3 = 2 then (
            match !live with
            | e :: rest ->
                Hugepages.free hp e;
                live := rest
            | [] -> ())
          else
            match Hugepages.alloc hp size with
            | None -> ()
            | Some e ->
                List.iter
                  (fun (other : Hugepages.extent) ->
                    let disjoint =
                      e.Hugepages.offset >= other.Hugepages.offset + other.Hugepages.len
                      || other.Hugepages.offset >= e.Hugepages.offset + e.Hugepages.len
                    in
                    if not disjoint then ok := false)
                  !live;
                live := e :: !live)
        sizes;
      List.iter (Hugepages.free hp) !live;
      !ok && Hugepages.bytes_in_use hp = 0)

let hp_fragmentation_stress () =
  (* Thousands of interleaved extents: freeing every second one first
     leaves ~n/2 disjoint holes, so each remaining free walks a maximally
     fragmented free list (this overflowed the stack when insert/coalesce
     were not tail-recursive). *)
  let n = 8192 in
  let hp = Hugepages.create ~page_size:(2 * 1024 * 1024) ~pages:(n / 2) () in
  let extents = Array.init n (fun _ -> Option.get (Hugepages.alloc hp 64)) in
  for i = 0 to n - 1 do
    if i mod 2 = 0 then Hugepages.free hp extents.(i)
  done;
  Alcotest.(check int) "live after even frees" (n / 2) (Hugepages.allocations hp);
  for i = 0 to n - 1 do
    if i mod 2 = 1 then Hugepages.free hp extents.(i)
  done;
  Alcotest.(check int) "all returned" 0 (Hugepages.bytes_in_use hp);
  Alcotest.(check int) "nothing live" 0 (Hugepages.allocations hp);
  (* Holes coalesced back into one region: the full capacity is allocatable
     again in a single extent. *)
  match Hugepages.alloc hp (Hugepages.capacity hp) with
  | Some e -> Hugepages.free hp e
  | None -> Alcotest.fail "free list did not coalesce back to one hole"

let tests =
  [
    Alcotest.test_case "roundtrip all ops" `Quick roundtrip_all_ops;
    Alcotest.test_case "decode garbage" `Quick decode_garbage;
    Alcotest.test_case "addr packing" `Quick addr_packing;
    Alcotest.test_case "err codes" `Quick err_codes;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "view equals decode (all ops)" `Quick view_equals_decode;
    Alcotest.test_case "view qset patch" `Quick view_set_qset;
    QCheck_alcotest.to_alcotest qcheck_view_equivalence;
    Alcotest.test_case "hugepages alloc/free/coalesce" `Quick hp_alloc_free;
    Alcotest.test_case "hugepages double free" `Quick hp_double_free;
    Alcotest.test_case "hugepages exhaustion" `Quick hp_exhaustion;
    Alcotest.test_case "hugepages payload roundtrip" `Quick hp_payload_roundtrip;
    Alcotest.test_case "hugepages fragmentation stress" `Quick hp_fragmentation_stress;
    QCheck_alcotest.to_alcotest qcheck_allocator;
  ]
