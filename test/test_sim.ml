(* Engine, CPU model and pressure estimator tests. *)

module E = Sim.Engine
module Cpu = Sim.Cpu

let engine_ordering () =
  let e = E.create () in
  let log = ref [] in
  ignore (E.schedule e ~delay:0.3 (fun () -> log := "c" :: !log));
  ignore (E.schedule e ~delay:0.1 (fun () -> log := "a" :: !log));
  ignore (E.schedule e ~delay:0.2 (fun () -> log := "b" :: !log));
  E.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let engine_same_time_fifo () =
  let e = E.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (E.schedule e ~delay:0.1 (fun () -> log := i :: !log))
  done;
  E.run e;
  Alcotest.(check (list int)) "insertion order at same time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let engine_cancel () =
  let e = E.create () in
  let fired = ref false in
  let h = E.schedule e ~delay:0.1 (fun () -> fired := true) in
  E.Timer.cancel h;
  E.run e;
  Alcotest.(check bool) "cancelled event must not run" false !fired

let engine_until () =
  let e = E.create () in
  let fired = ref 0 in
  ignore (E.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (E.schedule e ~delay:3.0 (fun () -> incr fired));
  E.run e ~until:2.0;
  Alcotest.(check int) "only events before horizon" 1 !fired;
  if E.now e < 2.0 then Alcotest.fail "clock must reach the horizon"

let engine_nested_schedule () =
  let e = E.create () in
  let depth = ref 0 in
  let rec go n = if n > 0 then ignore (E.schedule e ~delay:0.01 (fun () -> incr depth; go (n - 1))) in
  go 10;
  E.run e;
  Alcotest.(check int) "chain of nested events" 10 !depth

(* ---- timing-wheel order oracle ----------------------------------------- *)

(* The engine's pending set is a hierarchical timing wheel, but its contract
   is the seed binary heap's exact (time, insertion-seq) execution order.
   Reference model: that heap, rebuilt here on Nkutil.Heap with the same
   clamping/cancellation semantics. Both run the same scripted ~100K-event
   schedule — dense sub-tick delays, exact ties, zero and negative delays,
   multi-second overflow delays, events scheduled from inside callbacks, and
   cancellations — and must log byte-identical id sequences. *)

type 'h sched_api = {
  api_schedule : delay:float -> (unit -> unit) -> 'h;
  api_cancel : 'h -> unit;
  api_run : unit -> unit;
}

module Ref_engine = struct
  type ev = {
    time : float;
    seq : int;
    f : unit -> unit;
    mutable cancelled : bool;
  }

  type t = { heap : ev Nkutil.Heap.t; mutable clock : float; mutable next_seq : int }

  let dummy = { time = 0.0; seq = 0; f = ignore; cancelled = true }

  let leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

  let create () =
    { heap = Nkutil.Heap.create ~dummy ~leq (); clock = 0.0; next_seq = 0 }

  let schedule t ~delay f =
    let at = Float.max (t.clock +. delay) t.clock in
    let ev = { time = at; seq = t.next_seq; f; cancelled = false } in
    t.next_seq <- t.next_seq + 1;
    Nkutil.Heap.add t.heap ev;
    ev

  let run t =
    let continue = ref true in
    while !continue do
      match Nkutil.Heap.pop_min t.heap with
      | None -> continue := false
      | Some ev ->
          if not ev.cancelled then begin
            t.clock <- ev.time;
            ev.f ()
          end
    done
end

(* Delay distribution keyed only on the event id, so both runs compute the
   same schedule without sharing any mutable generator state. *)
let scripted_delay id =
  let rng = Nkutil.Rng.create ~seed:(0xF00D + id) in
  match id land 15 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> Nkutil.Rng.float_range rng 0.0 50e-6 (* dense, sub-slot *)
  | 6 | 7 | 8 -> float_of_int (Nkutil.Rng.int rng 40) *. 1e-6 (* quantized: exact ties *)
  | 9 | 10 -> 0.0
  | 11 -> -1e-6 (* negative: clamps to now *)
  | 12 | 13 -> Nkutil.Rng.float_range rng 0.0 0.05 (* mid-range, upper wheel levels *)
  | _ -> Nkutil.Rng.float_range rng 0.5 10.0 (* far future: overflow heap *)

let run_script (type h) (api : h sched_api) ~total =
  let order = ref [] in
  let spawned = ref 0 in
  let handles : (int, h) Hashtbl.t = Hashtbl.create 1024 in
  let rec spawn depth =
    if !spawned < total then begin
      let id = !spawned in
      incr spawned;
      let h = api.api_schedule ~delay:(scripted_delay id) (fun () -> fire id depth) in
      Hashtbl.replace handles id h
    end
  and fire id depth =
    order := id :: !order;
    (* Some events fan out into fresh events mid-run (exercising seq
       assignment while the wheel cursor has advanced)... *)
    if depth < 4 && id land 7 <= 2 then begin
      spawn (depth + 1);
      spawn (depth + 1)
    end;
    (* ...and some cancel a not-necessarily-pending later event. *)
    if id land 15 = 3 then
      match Hashtbl.find_opt handles (id + 5) with
      | Some h -> api.api_cancel h
      | None -> ()
  in
  (* Seed enough roots that fan-out reaches [total]. *)
  for _ = 1 to total / 2 do
    spawn 0
  done;
  api.api_run ();
  List.rev !order

let wheel_matches_heap_oracle () =
  let total = 100_000 in
  let wheel_order =
    let e = E.create () in
    run_script
      {
        api_schedule = (fun ~delay f -> E.schedule e ~delay f);
        api_cancel = E.Timer.cancel;
        api_run = (fun () -> E.run e);
      }
      ~total
  in
  let heap_order =
    let r = Ref_engine.create () in
    run_script
      {
        api_schedule = (fun ~delay f -> Ref_engine.schedule r ~delay f);
        api_cancel = (fun ev -> ev.Ref_engine.cancelled <- true);
        api_run = (fun () -> Ref_engine.run r);
      }
      ~total
  in
  Alcotest.(check int) "every live event fired" (List.length heap_order)
    (List.length wheel_order);
  if not (List.equal Int.equal wheel_order heap_order) then begin
    let rec first_diff i a b =
      match (a, b) with
      | x :: a', y :: b' -> if x <> y then (i, x, y) else first_diff (i + 1) a' b'
      | _ -> (i, -1, -1)
    in
    let i, x, y = first_diff 0 wheel_order heap_order in
    Alcotest.failf "execution order diverges at position %d: wheel=%d heap=%d" i x y
  end

let cpu_fifo_and_accounting () =
  let e = E.create () in
  let core = Cpu.create e ~freq_ghz:1.0 ~name:"c0" () in
  let finish_times = ref [] in
  (* 1 GHz -> 1e9 cycles/s; 1e6 cycles = 1 ms *)
  Cpu.exec core ~cycles:1e6 (fun () -> finish_times := E.now e :: !finish_times);
  Cpu.exec core ~cycles:2e6 (fun () -> finish_times := E.now e :: !finish_times);
  E.run e;
  (match List.rev !finish_times with
  | [ t1; t2 ] ->
      if Float.abs (t1 -. 0.001) > 1e-9 then Alcotest.failf "first at %f" t1;
      if Float.abs (t2 -. 0.003) > 1e-9 then Alcotest.failf "second queued: %f" t2
  | _ -> Alcotest.fail "expected two completions");
  if Float.abs (Cpu.busy_cycles core -. 3e6) > 1.0 then Alcotest.fail "busy cycles";
  if Float.abs (Cpu.busy_seconds core -. 0.003) > 1e-9 then Alcotest.fail "busy seconds"

let cpu_set_pick_stable () =
  let e = E.create () in
  let set = Cpu.Set.create e ~name:"s" ~n:4 () in
  let a = Cpu.Set.pick set ~hash:12345 in
  let b = Cpu.Set.pick set ~hash:12345 in
  if not (a == b) then Alcotest.fail "pick must be deterministic"

let pressure_decays () =
  let e = E.create () in
  let p = Sim.Pressure.create e ~tau:0.01 () in
  Sim.Pressure.observe p ~bits:1e6;
  let r0 = Sim.Pressure.rate_bps p in
  ignore (E.schedule e ~delay:0.05 (fun () -> ()));
  E.run e;
  let r1 = Sim.Pressure.rate_bps p in
  if not (r0 > 0.0 && r1 < r0 /. 100.0) then
    Alcotest.failf "pressure must decay: %f -> %f" r0 r1

let pressure_copy_cost_grows () =
  let e = E.create () in
  let p = Sim.Pressure.create e () in
  let idle = Sim.Pressure.hugepage_copy_cost p ~base:0.02 ~contention:0.2 in
  (* Push the estimate to ~100 Gb/s. *)
  Sim.Pressure.observe p ~bits:1e9;
  let busy = Sim.Pressure.hugepage_copy_cost p ~base:0.02 ~contention:0.2 in
  if busy <= idle then Alcotest.fail "cost must grow with pressure"

let contention_mult () =
  let m = Sim.Cost_profile.contention_mult ~factor:0.1 ~cores:4 in
  if Float.abs (m -. 1.3) > 1e-9 then Alcotest.failf "mult %f" m;
  let one = Sim.Cost_profile.contention_mult ~factor:0.5 ~cores:1 in
  if Float.abs (one -. 1.0) > 1e-9 then Alcotest.fail "single core has no contention"

let tests =
  [
    Alcotest.test_case "event ordering" `Quick engine_ordering;
    Alcotest.test_case "same-time FIFO" `Quick engine_same_time_fifo;
    Alcotest.test_case "cancellation" `Quick engine_cancel;
    Alcotest.test_case "run until horizon" `Quick engine_until;
    Alcotest.test_case "nested scheduling" `Quick engine_nested_schedule;
    Alcotest.test_case "wheel vs heap order oracle (100K)" `Quick wheel_matches_heap_oracle;
    Alcotest.test_case "cpu FIFO + accounting" `Quick cpu_fifo_and_accounting;
    Alcotest.test_case "cpu set pick stable" `Quick cpu_set_pick_stable;
    Alcotest.test_case "pressure decays" `Quick pressure_decays;
    Alcotest.test_case "pressure raises copy cost" `Quick pressure_copy_cost_grows;
    Alcotest.test_case "contention multiplier" `Quick contention_mult;
  ]
