(* Tcb serialization round-trip: [snapshot (restore (snapshot t))] must be
   byte-for-byte identical to [snapshot t] in every connection state the
   machine can reach — including mid-stream reassembly gaps and live
   retransmission queues — for each congestion-control module. This is the
   invariant live NSM migration rides on. *)

open Tcpstack
module E = Sim.Engine

(* Small GSO so a burst leaves as several wire segments — the reassembly-gap
   and shuffled-delivery scenarios need a multi-segment flight inside the
   initial window. *)
let cfg = { Tcb.default_config with Tcb.gso = 2 * Segment.mss }

let mk_act engine outq est =
  {
    Tcb.now = (fun () -> E.now engine);
    emit = (fun seg -> Queue.push seg outq);
    set_timer = (fun ~delay f -> E.schedule engine ~delay f);
    cancel_timer = E.Timer.cancel;
    on_established = (fun () -> est := true);
    on_readable = (fun () -> ());
    on_writable = (fun () -> ());
    on_error = (fun _ -> ());
    on_destroy = (fun () -> ());
    on_transition = (fun _ _ -> ());
  }

(* The restored twin gets a mute actions record: its re-armed timers must
   never leak segments into the scenario under test. *)
let null_act engine =
  {
    Tcb.now = (fun () -> E.now engine);
    emit = (fun _ -> ());
    set_timer = (fun ~delay f -> E.schedule engine ~delay f);
    cancel_timer = E.Timer.cancel;
    on_established = (fun () -> ());
    on_readable = (fun () -> ());
    on_writable = (fun () -> ());
    on_error = (fun _ -> ());
    on_destroy = (fun () -> ());
    on_transition = (fun _ _ -> ());
  }

(* One checkpoint: snapshot, restore on a fresh controller from the same
   factory over the original channel, snapshot again, compare structurally
   (Snapshot.full is plain immutable data). *)
let roundtrip ~engine ~mkcc ~channel ~role name tcb =
  let s1 = Tcb.snapshot tcb in
  let twin = Tcb.restore ~act:(null_act engine) ~cc:(mkcc ()) ~channel ~role s1 in
  let s2 = Tcb.snapshot twin in
  Tcb.destroy_quiet twin;
  if not (s1 = s2) then
    Alcotest.failf "%s (%s, state %s): snapshot changed across restore" name
      s1.Tcb.Snapshot.s_cc_name
      (Tcb.state_to_string s1.Tcb.Snapshot.s_state);
  s1

(* Drive a raw TCB pair through the whole state machine, checkpointing the
   round-trip at every stop. Segments move through explicit queues so the
   test can hold one back to open a reassembly gap. *)
let full_lifecycle ~mkcc () =
  let engine = E.create () in
  let registry = Conn_registry.create () in
  let flow = Addr.Flow.make ~src:(Addr.make 1 5000) ~dst:(Addr.make 2 80) in
  let isn_c = 12345 and isn_s = 54321 in
  let channel = Conn_registry.register registry ~flow ~isn:isn_c in
  let cq = Queue.create () and sq = Queue.create () in
  let c_est = ref false and s_est = ref false in
  let seen = ref [] in
  let ck ~role ~channel name tcb =
    let s = roundtrip ~engine ~mkcc ~channel ~role name tcb in
    seen := s.Tcb.Snapshot.s_state :: !seen;
    s
  in
  let client =
    Tcb.create_active ~flow ~cfg ~act:(mk_act engine cq c_est) ~cc:(mkcc ()) ~isn:isn_c
      ~channel
  in
  ignore (ck ~role:`Client ~channel "fresh active open" client);
  let syn = Queue.pop cq in
  let channel_s =
    match Conn_registry.lookup registry ~flow:syn.Segment.flow ~isn:syn.Segment.seq with
    | Some c -> c
    | None -> Alcotest.fail "no channel registered for the SYN"
  in
  let server =
    Tcb.create_passive
      ~flow:(Addr.Flow.reverse syn.Segment.flow)
      ~cfg
      ~act:(mk_act engine sq s_est)
      ~cc:(mkcc ()) ~isn:isn_s ~remote_isn:syn.Segment.seq ~remote_ts:syn.Segment.ts
      ~channel:channel_s
  in
  ignore (ck ~role:`Server ~channel:channel_s "half-open passive" server);
  let pump () =
    let progress = ref true in
    while !progress do
      progress := false;
      (match Queue.take_opt cq with
      | Some s ->
          progress := true;
          Tcb.input server s
      | None -> ());
      match Queue.take_opt sq with
      | Some s ->
          progress := true;
          Tcb.input client s
      | None -> ()
    done
  in
  pump ();
  if not (!c_est && !s_est) then Alcotest.fail "handshake did not complete";
  ignore (ck ~role:`Client ~channel "established idle" client);
  ignore (ck ~role:`Server ~channel:channel_s "established idle" server);
  (* Mid-stream: write a burst, hold the first flight segment back so the
     receiver buffers out-of-order ranges, and let the resulting dupacks
     reach the sender (retx queue, dupack counter, possibly recovery). *)
  let wrote = Tcb.write client (Types.Zeros 60_000) in
  if wrote <= 0 then Alcotest.fail "write accepted nothing";
  let flight = List.of_seq (Queue.to_seq cq) in
  Queue.clear cq;
  (match flight with
  | [] | [ _ ] -> Alcotest.fail "expected a multi-segment flight"
  | first :: rest ->
      List.iter (fun s -> Tcb.input server s) rest;
      let gap = ck ~role:`Server ~channel:channel_s "reassembly gap" server in
      (match gap.Tcb.Snapshot.s_reasm with
      | Some r when r.Reassembly.s_ranges <> [] -> ()
      | _ -> Alcotest.fail "receiver holds no out-of-order ranges");
      (* dupacks towards the sender *)
      while not (Queue.is_empty sq) do
        Tcb.input client (Queue.pop sq)
      done;
      Queue.clear cq (* drop any fast-retransmit: keep the hole open *);
      let mid = ck ~role:`Client ~channel "inflight with dupacks" client in
      if mid.Tcb.Snapshot.s_retxq = [] then Alcotest.fail "sender retx queue is empty";
      Tcb.input server first);
  (* Heal: let the RTO (plus retries) retransmit whatever the dropped
     fast-retransmit covered, then drain the exchange. *)
  E.run engine ~until:10.0;
  pump ();
  E.run engine ~until:20.0;
  pump ();
  ignore (Tcb.read server ~max:100_000 ~mode:`Discard);
  ignore (ck ~role:`Client ~channel "established after recovery" client);
  ignore (ck ~role:`Server ~channel:channel_s "established after recovery" server);
  (* Teardown, one arc per state. *)
  Tcb.close client;
  ignore (ck ~role:`Client ~channel "local close sent" client);
  while not (Queue.is_empty cq) do
    Tcb.input server (Queue.pop cq)
  done;
  ignore (ck ~role:`Server ~channel:channel_s "peer close received" server);
  while not (Queue.is_empty sq) do
    Tcb.input client (Queue.pop sq)
  done;
  ignore (ck ~role:`Client ~channel "half closed" client);
  Tcb.close server;
  ignore (ck ~role:`Server ~channel:channel_s "last ack pending" server);
  while not (Queue.is_empty sq) do
    Tcb.input client (Queue.pop sq)
  done;
  ignore (ck ~role:`Client ~channel "time wait" client);
  while not (Queue.is_empty cq) do
    Tcb.input server (Queue.pop cq)
  done;
  (* Simultaneous close on a second connection reaches CLOSING. *)
  let flow2 = Addr.Flow.make ~src:(Addr.make 1 5001) ~dst:(Addr.make 2 80) in
  let ch2 = Conn_registry.register registry ~flow:flow2 ~isn:777 in
  let cq2 = Queue.create () and sq2 = Queue.create () in
  let c2 =
    Tcb.create_active ~flow:flow2 ~cfg ~act:(mk_act engine cq2 (ref false)) ~cc:(mkcc ())
      ~isn:777 ~channel:ch2
  in
  let syn2 = Queue.pop cq2 in
  let s2 =
    Tcb.create_passive
      ~flow:(Addr.Flow.reverse flow2)
      ~cfg
      ~act:(mk_act engine sq2 (ref false))
      ~cc:(mkcc ()) ~isn:888 ~remote_isn:syn2.Segment.seq ~remote_ts:syn2.Segment.ts
      ~channel:ch2
  in
  let pump2 () =
    let progress = ref true in
    while !progress do
      progress := false;
      (match Queue.take_opt cq2 with
      | Some s ->
          progress := true;
          Tcb.input s2 s
      | None -> ());
      match Queue.take_opt sq2 with
      | Some s ->
          progress := true;
          Tcb.input c2 s
      | None -> ()
    done
  in
  pump2 ();
  Tcb.close c2;
  Tcb.close s2;
  (* cross-deliver the FINs only *)
  while not (Queue.is_empty cq2) do
    Tcb.input s2 (Queue.pop cq2)
  done;
  ignore (ck ~role:`Server ~channel:ch2 "simultaneous close" s2);
  while not (Queue.is_empty sq2) do
    Tcb.input c2 (Queue.pop sq2)
  done;
  pump2 ();
  (* Every state the machine exposes to migration must have been hit. *)
  let expect =
    [
      Tcb.Syn_sent;
      Tcb.Syn_rcvd;
      Tcb.Established;
      Tcb.Fin_wait_1;
      Tcb.Fin_wait_2;
      Tcb.Close_wait;
      Tcb.Closing;
      Tcb.Last_ack;
      Tcb.Time_wait;
    ]
  in
  List.iter
    (fun st ->
      if not (List.mem st !seen) then
        Alcotest.failf "state %s never checkpointed" (Tcb.state_to_string st))
    expect

let ccs =
  [
    ("reno", Cc_reno.factory ~mss:Segment.mss);
    ("cubic", Cc_cubic.factory ~mss:Segment.mss);
    ("bbr", Cc_bbr.factory ~mss:Segment.mss);
    ("dctcp", Cc_dctcp.factory ~mss:Segment.mss);
  ]

(* Property: under a random write pattern and a random partial/shuffled
   delivery order, both ends round-trip at an arbitrary mid-stream instant. *)
let random_midstream =
  QCheck.Test.make ~name:"random mid-stream snapshot/restore identity" ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound (List.length ccs - 1)))
    (fun (seed, cci) ->
      let mkcc = snd (List.nth ccs cci) in
      let rng = Nkutil.Rng.create ~seed in
      let engine = E.create () in
      let registry = Conn_registry.create () in
      let flow = Addr.Flow.make ~src:(Addr.make 1 6000) ~dst:(Addr.make 2 80) in
      let isn = 1 + Nkutil.Rng.int rng 100000 in
      let channel = Conn_registry.register registry ~flow ~isn in
      let cq = Queue.create () and sq = Queue.create () in
      let client =
        Tcb.create_active ~flow ~cfg ~act:(mk_act engine cq (ref false)) ~cc:(mkcc ())
          ~isn ~channel
      in
      let syn = Queue.pop cq in
      let server =
        Tcb.create_passive
          ~flow:(Addr.Flow.reverse flow)
          ~cfg
          ~act:(mk_act engine sq (ref false))
          ~cc:(mkcc ())
          ~isn:(1 + Nkutil.Rng.int rng 100000)
          ~remote_isn:syn.Segment.seq ~remote_ts:syn.Segment.ts ~channel
      in
      let pump () =
        let progress = ref true in
        while !progress do
          progress := false;
          (match Queue.take_opt cq with
          | Some s ->
              progress := true;
              Tcb.input server s
          | None -> ());
          match Queue.take_opt sq with
          | Some s ->
              progress := true;
              Tcb.input client s
          | None -> ()
        done
      in
      pump ();
      (* a few rounds of writes with shuffled, partially-withheld delivery *)
      for _round = 0 to 2 do
        ignore (Tcb.write client (Types.Zeros (1 + Nkutil.Rng.int rng 50_000)));
        let flight = Array.of_seq (Queue.to_seq cq) in
        Queue.clear cq;
        Nkutil.Rng.shuffle rng flight;
        Array.iter
          (fun s -> if Nkutil.Rng.int rng 100 < 70 then Tcb.input server s)
          flight;
        while not (Queue.is_empty sq) do
          Tcb.input client (Queue.pop sq)
        done;
        Queue.clear cq
      done;
      let ok ~role ~ch tcb =
        let s1 = Tcb.snapshot tcb in
        let twin = Tcb.restore ~act:(null_act engine) ~cc:(mkcc ()) ~channel:ch ~role s1 in
        let s2 = Tcb.snapshot twin in
        Tcb.destroy_quiet twin;
        s1 = s2
      in
      ok ~role:`Client ~ch:channel client && ok ~role:`Server ~ch:channel server)

let tests =
  List.map
    (fun (name, mkcc) ->
      Alcotest.test_case
        (Printf.sprintf "lifecycle round-trip (%s)" name)
        `Quick (full_lifecycle ~mkcc))
    ccs
  @ [ QCheck_alcotest.to_alcotest random_midstream ]
