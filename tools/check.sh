#!/bin/sh
# Repo check: tier-1 build + tests + nklint static analysis, plus a format
# check when ocamlformat is available (the pinned version is in
# .ocamlformat; the build does not require it, so environments without it
# skip the formatting step).
set -e
cd "$(dirname "$0")/.."
dune build
dune runtest
dune build @lint
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "check.sh: ocamlformat not installed; skipping format check"
fi
echo "check.sh: OK"
