#!/bin/sh
# Repo check: tier-1 build + tests + static analysis, plus a format
# check when ocamlformat is available (the pinned version is in
# .ocamlformat; the build does not require it, so environments without it
# skip the formatting step).
set -e
cd "$(dirname "$0")/.."
dune build
dune runtest
# @lint runs nklint (syntactic, DESIGN.md §10) over lib/ bin/ bench/ test/,
# then nkscope (typedtree interprocedural, DESIGN.md §15) over the .cmt
# artifacts `dune build` just produced — the lint rule depends on the
# default alias with sandboxing off, so nkscope never recompiles the tree.
dune build @lint
# Determinism smoke: the sharded CoreEngine must give byte-identical results
# run-to-run, so the quick CE-scaling sweep is executed twice and the CSVs
# diffed. Any divergence means nondeterminism leaked into the datapath.
out1=$(mktemp) out2=$(mktemp)
trap 'rm -f "$out1" "$out2"' EXIT
dune exec bin/nk.exe -- run ce-scale --quick --csv > "$out1"
dune exec bin/nk.exe -- run ce-scale --quick --csv > "$out2"
if ! diff -q "$out1" "$out2" >/dev/null; then
  echo "check.sh: ce-scale runs diverged (nondeterminism in the sharded CE):" >&2
  diff "$out1" "$out2" >&2 || true
  exit 1
fi
echo "check.sh: ce-scale determinism smoke OK"
# Span tracing smoke: the quick latency-breakdown run is executed twice and
# the catapult JSON exports diffed — Nkspan derives every timestamp from
# virtual time, so same-seed traces must be byte-identical.
cat1=$(mktemp) cat2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$cat1" "$cat2"' EXIT
dune exec bin/nk.exe -- span --quick --catapult "$cat1" > /dev/null
dune exec bin/nk.exe -- span --quick --catapult "$cat2" > /dev/null
if ! diff -q "$cat1" "$cat2" >/dev/null; then
  echo "check.sh: latency-breakdown catapult exports diverged (nondeterminism in Nkspan):" >&2
  diff "$cat1" "$cat2" >&2 || true
  exit 1
fi
echo "check.sh: latency-breakdown catapult determinism smoke OK"
# Cluster smoke: the quick fig-cluster run (two hosts, one live cross-host
# NSM migration over the Nkfabric spine) is executed twice and the CSVs
# diffed — migration, relay and spine shipping must all be deterministic.
cl1=$(mktemp) cl2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$cat1" "$cat2" "$cl1" "$cl2"' EXIT
dune exec bin/nk.exe -- run cluster --quick --csv > "$cl1"
dune exec bin/nk.exe -- run cluster --quick --csv > "$cl2"
if ! diff -q "$cl1" "$cl2" >/dev/null; then
  echo "check.sh: cluster runs diverged (nondeterminism in Nkfabric):" >&2
  diff "$cl1" "$cl2" >&2 || true
  exit 1
fi
echo "check.sh: cluster determinism smoke OK"
# Incast smoke: the quick N-to-1 incast run (live TCP->Homa protocol
# handover under Nkctl) is executed twice and the CSVs diffed — the Homa
# grant pacer, the handover pump and the post-switch RPC phase must all
# be deterministic.
in1=$(mktemp) in2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$cat1" "$cat2" "$cl1" "$cl2" "$in1" "$in2"' EXIT
dune exec bin/nk.exe -- run incast --quick --csv > "$in1"
dune exec bin/nk.exe -- run incast --quick --csv > "$in2"
if ! diff -q "$in1" "$in2" >/dev/null; then
  echo "check.sh: incast runs diverged (nondeterminism in homastack or the handover):" >&2
  diff "$in1" "$in2" >&2 || true
  exit 1
fi
echo "check.sh: incast determinism smoke OK"
# SLO smoke: the quick slo run (tenant SLO breach -> Nkobs alert -> Nkctl
# reaction) is executed twice and the CSVs diffed — federation order, SLO
# window evaluation, alert firing and the flight-recorder dumps (the report
# embeds a dump digest) must all be deterministic.
sl1=$(mktemp) sl2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$cat1" "$cat2" "$cl1" "$cl2" "$in1" "$in2" "$sl1" "$sl2"' EXIT
dune exec bin/nk.exe -- run slo --quick --csv > "$sl1"
dune exec bin/nk.exe -- run slo --quick --csv > "$sl2"
if ! diff -q "$sl1" "$sl2" >/dev/null; then
  echo "check.sh: slo runs diverged (nondeterminism in Nkobs):" >&2
  diff "$sl1" "$sl2" >&2 || true
  exit 1
fi
echo "check.sh: slo determinism smoke OK"
# Bench drift gate: fresh quick-mode snapshots are diffed against the
# committed BENCH_<id>.json baselines. The simulated metric tables are
# deterministic, so any drift beyond the tolerance is a behaviour change
# that must be acknowledged by regenerating the baseline
# (`dune exec bin/nk.exe -- bench <id> -o BENCH_<id>.json`). Wall-clock
# is reported as a ratio only, never gated.
for id in ce-scale latency-breakdown cluster incast slo; do
  snap=$(mktemp)
  dune exec bin/nk.exe -- bench "$id" -o "$snap"
  dune exec bin/nk.exe -- bench --compare "BENCH_$id.json,$snap"
  rm -f "$snap"
  echo "check.sh: bench baseline $id OK"
done
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "check.sh: ocamlformat not installed; skipping format check"
fi
echo "check.sh: OK"
