(* nklint CLI: [nklint [--format text|json] PATH...] lints every .ml/.mli
   under the given files or directories and exits nonzero if any diagnostic
   fires. Wired into the build as [dune build @lint] (see the root dune
   file) and tools/check.sh. *)

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
           else walk (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
    path :: acc
  else acc

let usage () =
  prerr_endline "usage: nklint [--format text|json] PATH...";
  exit 2

let () =
  let format = ref `Text in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--format" :: fmt :: rest ->
        (match fmt with
        | "text" -> format := `Text
        | "json" -> format := `Json
        | _ -> usage ());
        parse rest
    | "--format" :: [] -> usage ()
    | arg :: rest ->
        roots := arg :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then usage ();
  let files = List.rev (List.fold_left (fun acc r -> walk r acc) [] roots) in
  let per_file = List.concat_map Nklint_rules.lint_file files in
  (* S1 aggregates across every lib/ file in this invocation: the opener and
     closer of a span stage live in different components by design. *)
  let begins, ends =
    List.fold_left
      (fun (bs, es) f ->
        let b, e = Nklint_rules.stage_uses_file f in
        (bs @ b, es @ e))
      ([], []) files
  in
  let diags = per_file @ Nklint_rules.span_pairing ~begins ~ends in
  (match !format with
  | `Text -> List.iter (fun d -> print_endline (Nklint_rules.to_string d)) diags
  | `Json -> print_endline (Nklint_rules.to_json_array diags));
  Printf.eprintf "nklint: %d files checked, %d diagnostic%s\n%!" (List.length files)
    (List.length diags)
    (if List.length diags = 1 then "" else "s");
  exit (if diags = [] then 0 else 1)
