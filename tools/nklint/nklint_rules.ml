(* nklint — NetKernel's repo-specific static analysis (DESIGN.md §10).

   Walks OCaml parsetrees (compiler-libs [Ast_iterator], no ppx) and
   enforces the determinism and invariant discipline the reproduction's
   scientific claim rests on:

   D1  no wall clock / ambient randomness under lib/ — simulated components
       must take time from [Sim.Engine] and randomness from [Nkutil.Rng];
   D2  no order-sensitive [Hashtbl.iter]/[Hashtbl.fold] — use
       [Nkutil.Det_tbl] (key-sorted) or waive with (* nklint: ordered-ok *);
   D3  no bare polymorphic [compare] passed as a function value — use the
       monomorphic [Int.compare]/[Float.compare]/... (polymorphic compare
       on non-immediate types walks structure, and on custom types orders
       by declaration accident);
   D4  no [Obj.magic]; no exception-swallowing [try ... with _ ->] outside
       the allowlist below (waivers: magic-ok / swallow-ok);
   P1  NQE wire-protocol invariants in lib/core/nqe.ml: the declared
       [size_bytes] must equal the encoder's written span, every opcode
       constructor must appear in both the encode and decode match sites,
       and encode must assign distinct byte values;
   H1  no full [Nqe.decode]/[Nqe.decode_from] in the lib/core hot-path
       modules (the datapath reads fields through the zero-allocation
       [Nqe.View] accessors; a deliberate full decode — e.g. an endpoint
       apply loop that needs the whole record — is waived with
       (* nklint: decode-ok *));
   W1  no rotten waivers: a waiver comment that suppresses zero diagnostics
       in its .ml file, an unknown [nklint:]/[nkscope:] token, or a nkscope
       token outside the lib/ tree nkscope analyzes, is itself reported.
       Tokens quoted inside string literals (the lint test fixtures) are
       exempt; .mli files are skipped (no rule fires on interfaces, so a
       doc-comment mention of a token is not a waiver).

   The analysis is purely syntactic (parsetree, not typedtree): it can be
   fooled by module aliasing or shadowing, which is acceptable — the rules
   target idioms this codebase actually uses, and the waiver comments are
   the escape hatch for deliberate exceptions. *)

open Parsetree

type diag = { file : string; line : int; col : int; rule : string; msg : string }

let to_string d = Printf.sprintf "%s:%d: %s: %s" d.file d.line d.rule d.msg

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"msg\":\"%s\"}"
    (json_escape d.file) d.line d.col (json_escape d.rule) (json_escape d.msg)

let to_json_array diags = "[" ^ String.concat ",\n " (List.map to_json diags) ^ "]"

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

(* D4 sites allowed without an inline waiver: (path suffix, rule) pairs.
   Empty on main — the historical Obj.magic in nkutil/heap.ml was fixed for
   real (caller-supplied dummy element), not allowlisted. *)
let d4_allowlist : (string * string) list = []

let allowlisted ~path rule =
  List.exists
    (fun (suffix, r) -> r = rule && Filename.check_suffix path suffix)
    d4_allowlist

(* Waiver comments. A waiver on line N covers diagnostics on lines N and
   N+1, so it can sit on its own line above the flagged expression or at
   the end of the same line. (The scan is textual; a waiver token inside a
   string literal would also count — don't do that.) *)
let waiver_tokens =
  [
    ("nklint: ordered-ok", "D2");
    ("nklint: magic-ok", "D4");
    ("nklint: swallow-ok", "D4");
    ("nklint: decode-ok", "H1");
  ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let in_lib path =
  String.length path >= 4 && String.sub path 0 4 = "lib/" || contains ~sub:"/lib/" path

(* nkscope (tools/nkscope) owns these tokens inside lib/ .ml files; nklint
   only polices them where nkscope never looks (W1 below). *)
let nkscope_tokens = [ "volatile"; "ce-owner"; "nondet-ok" ]

(* The word following [marker] on [line] ("ordered-ok" after "nklint:"), or
   None when the marker is absent. *)
let token_word line marker =
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let i = ref i in
      while !i < n && line.[!i] = ' ' do
        incr i
      done;
      let j = ref !i in
      while
        !j < n
        &&
        match line.[!j] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
        | _ -> false
      do
        incr j
      done;
      Some (String.sub line !i (!j - !i))

type waiver = { w_line : int; w_rule : string; w_token : string; mutable w_used : bool }

let scan_waivers ~path ~strlit src =
  (* (waiver records for known nklint tokens, W1 diags for tokens that can
     never suppress anything: unknown nklint tokens, and nkscope tokens
     outside the lib/ .ml files nkscope analyzes). Lines inside
     waiver-bearing string literals are fixture text, not waivers. *)
  let in_strlit line = List.exists (fun (a, b) -> line >= a && line <= b) strlit in
  let waivers = ref [] and w1 = ref [] in
  let add_w1 line msg =
    w1 := { file = path; line; col = 0; rule = "W1"; msg } :: !w1
  in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      if not (in_strlit lnum) then (
        (match token_word line "nklint:" with
        | None | Some "" -> ()
        | Some word ->
            let token = "nklint: " ^ word in
            (match List.assoc_opt token waiver_tokens with
            | Some rule ->
                waivers :=
                  { w_line = lnum; w_rule = rule; w_token = token; w_used = false }
                  :: !waivers
            | None -> add_w1 lnum (Printf.sprintf "unknown nklint waiver token %S" token)));
        match token_word line "nkscope:" with
        | None | Some "" -> ()
        | Some word ->
            let token = "nkscope: " ^ word in
            if not (List.mem word nkscope_tokens) then
              add_w1 lnum (Printf.sprintf "unknown nkscope waiver token %S" token)
            else if not (in_lib path) then
              add_w1 lnum
                (Printf.sprintf
                   "%S has no effect here — nkscope only analyzes .ml files under lib/"
                   token)))
    (String.split_on_char '\n' src);
  (List.rev !waivers, List.rev !w1)

(* Line ranges of string literals that carry waiver-like tokens — the lint
   test fixtures quote whole waived programs, and those quoted tokens are
   not waivers of anything in the quoting file. *)
let waiver_string_literal_lines ast =
  let ranges = ref [] in
  let default = Ast_iterator.default_iterator in
  let record (loc : Location.t) s =
    if contains ~sub:"nklint:" s || contains ~sub:"nkscope:" s then
      ranges :=
        (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_end.Lexing.pos_lnum)
        :: !ranges
  in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> record e.pexp_loc s
    | _ -> ());
    default.expr self e
  in
  let pat self p =
    (match p.ppat_desc with
    | Ppat_constant (Pconst_string (s, _, _)) -> record p.ppat_loc s
    | _ -> ());
    default.pat self p
  in
  let it = { default with expr; pat } in
  it.structure it ast;
  !ranges

(* The lib/core modules on the per-NQE datapath, where a full record decode
   is wall-clock the whole simulation pays millions of times. *)
let hot_path_modules =
  [
    "coreengine.ml"; "nk_device.ml"; "queue_set.ml"; "vswitch.ml"; "nsm_shmem.ml";
    "guestlib.ml"; "servicelib.ml";
  ]

let in_hot_path path =
  contains ~sub:"core/" path && List.mem (Filename.basename path) hot_path_modules

(* ---- expression-level rules (D1–D4) ---------------------------------- *)

let loc_line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let loc_col (loc : Location.t) =
  loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol

let expr_rules ~path ast =
  let diags = ref [] in
  let add loc rule msg =
    diags := { file = path; line = loc_line loc; col = loc_col loc; rule; msg } :: !diags
  in
  let lib = in_lib path in
  (* Locations of idents in function-head position: [compare a b] is a
     direct (monomorphized-at-use) call and is not what D3 flags; the bare
     value [List.sort compare] is. *)
  let head_idents = Hashtbl.create 64 in
  let check_ident loc = function
    | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] | [ "Sys"; "time" ] as l
      when lib ->
        add loc "D1"
          (Printf.sprintf
             "wall-clock read %s in lib/ — take time from Sim.Engine (wall clock \
              belongs in bench/ only)"
             (String.concat "." l))
    | "Random" :: _ as l when lib ->
        add loc "D1"
          (Printf.sprintf
             "ambient randomness %s in lib/ — use Nkutil.Rng with an explicit seed"
             (String.concat "." l))
    | [ "Hashtbl"; ("iter" | "fold" as f) ] | [ "Stdlib"; "Hashtbl"; ("iter" | "fold" as f) ] ->
        add loc "D2"
          (Printf.sprintf
             "Hashtbl.%s visits entries in nondeterministic bucket order — use \
              Nkutil.Det_tbl.%s, or waive a provably order-insensitive site with (* \
              nklint: ordered-ok *)"
             f f)
    | ([ "compare" ] | [ "Stdlib"; "compare" ]) when not (Hashtbl.mem head_idents loc) ->
        add loc "D3"
          "bare polymorphic compare passed as a function — use Int.compare / \
           Float.compare / String.compare or a purpose-built comparator"
    | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] ->
        if not (allowlisted ~path "D4") then
          add loc "D4"
            "Obj.magic defeats the type system (and corrupts flat-float-array \
             payloads) — store a typed dummy/option instead"
    | [ "Nqe"; (("decode" | "decode_from") as f) ] when in_hot_path path ->
        add loc "H1"
          (Printf.sprintf
             "full Nqe.%s on the datapath allocates a record per NQE — read \
              fields through Nqe.View, or waive a deliberate full decode with \
              (* nklint: decode-ok *)"
             f)
    | _ -> ()
  in
  let default = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident _; pexp_loc; _ }, _) ->
        Hashtbl.replace head_idents pexp_loc ()
    | _ -> ());
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident loc (Longident.flatten txt)
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_any when not (allowlisted ~path "D4") ->
                add c.pc_lhs.ppat_loc "D4"
                  "try ... with _ -> swallows every exception (including \
                   Stack_overflow and Assert_failure) — match the specific \
                   exceptions, or waive with (* nklint: swallow-ok *)"
            | _ -> ())
          cases
    | _ -> ());
    default.expr self e
  in
  let it = { default with expr } in
  it.structure it ast;
  !diags

(* ---- P1: NQE wire-protocol invariants --------------------------------- *)

let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl

(* Body of [let f = function ... ] or [let f x = match x with ...]. *)
let fn_cases e =
  match e.pexp_desc with
  | Pexp_function cases -> Some cases
  | Pexp_fun (_, _, _, { pexp_desc = Pexp_match (_, cases); _ }) -> Some cases
  | _ -> None

let binding_named name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> txt = name | _ -> false

let find_binding name ast =
  List.find_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.find_opt (binding_named name) vbs
      | _ -> None)
    ast

let int_of_const e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> int_of_string_opt s
  | _ -> None

(* Width in bytes of a [Bytes.set_*] writer, from its name. *)
let set_width = function
  | "set_uint8" | "set_int8" -> Some 1
  | "set_uint16_le" | "set_uint16_be" | "set_uint16_ne" | "set_int16_le" | "set_int16_be"
  | "set_int16_ne" ->
      Some 2
  | "set_int32_le" | "set_int32_be" | "set_int32_ne" -> Some 4
  | "set_int64_le" | "set_int64_be" | "set_int64_ne" -> Some 8
  | _ -> None

(* Offset of the write position relative to [pos]: [pos] itself or
   [pos + k]. *)
let rel_offset e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident "pos"; _ } -> Some 0
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "+"; _ }; _ },
        [ (_, { pexp_desc = Pexp_ident { txt = Longident.Lident "pos"; _ }; _ });
          (_, k)
        ] ) ->
      int_of_const k
  | _ -> None

let encoder_span body =
  (* Max (offset + width) over every Bytes.set_* in the encoder body. *)
  let span = ref None in
  let default = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_ :: (_, pos_arg) :: _ as _args))
      -> (
        match Longident.flatten txt with
        | [ "Bytes"; setter ] -> (
            match (set_width setter, rel_offset pos_arg) with
            | Some w, Some off ->
                let s = off + w in
                span := Some (match !span with None -> s | Some m -> Int.max m s)
            | _ -> ())
        | _ -> ())
    | _ -> ());
    default.expr self e
  in
  let it = { default with expr } in
  it.expr it body;
  !span

let constructors_in_patterns cases =
  List.filter_map
    (fun c ->
      match c.pc_lhs.ppat_desc with
      | Ppat_construct ({ txt; _ }, _) -> last (Longident.flatten txt)
      | _ -> None)
    cases

let has_wildcard_pattern cases =
  List.exists (fun c -> match c.pc_lhs.ppat_desc with Ppat_any -> true | _ -> false) cases

let constructors_in_exprs ~known body_list =
  (* Every known-constructor name mentioned anywhere in the given
     expressions (e.g. the [Some Socket] results of the decoder). *)
  let found = ref [] in
  let default = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_construct ({ txt; _ }, _) -> (
        match last (Longident.flatten txt) with
        | Some name when List.mem name known && not (List.mem name !found) ->
            found := name :: !found
        | _ -> ())
    | _ -> ());
    default.expr self e
  in
  let it = { default with expr } in
  List.iter (it.expr it) body_list;
  !found

let rhs_int_constants cases = List.filter_map (fun c -> int_of_const c.pc_rhs) cases

let nqe_rules ~path ast =
  let diags = ref [] in
  let add loc msg =
    diags := { file = path; line = loc_line loc; col = loc_col loc; rule = "P1"; msg } :: !diags
  in
  let missing what loc = add loc (Printf.sprintf "expected %s in the NQE codec" what) in
  let top_loc =
    match ast with it :: _ -> it.pstr_loc | [] -> Location.none
  in
  (* opcode constructor names from [type op = ...] *)
  let op_ctors =
    List.find_map
      (fun item ->
        match item.pstr_desc with
        | Pstr_type (_, decls) ->
            List.find_map
              (fun d ->
                if d.ptype_name.Asttypes.txt = "op" then
                  match d.ptype_kind with
                  | Ptype_variant ctors ->
                      Some (List.map (fun c -> c.pcd_name.Asttypes.txt) ctors)
                  | _ -> None
                else None)
              decls
        | _ -> None)
      ast
  in
  (match op_ctors with
  | None -> missing "a [type op] variant declaration" top_loc
  | Some ctors -> (
      (* encode side: op_to_byte must pattern-match every constructor and
         assign distinct byte values *)
      (match find_binding "op_to_byte" ast with
      | None -> missing "an [op_to_byte] encode match" top_loc
      | Some vb -> (
          match fn_cases vb.pvb_expr with
          | None -> add vb.pvb_loc "op_to_byte is not a single-match function"
          | Some cases ->
              (if not (has_wildcard_pattern cases) then
                 let seen = constructors_in_patterns cases in
                 List.iter
                   (fun c ->
                     if not (List.mem c seen) then
                       add vb.pvb_loc
                         (Printf.sprintf "opcode %s missing from encode match (op_to_byte)" c))
                   ctors);
              let bytes = rhs_int_constants cases in
              let sorted = List.sort Int.compare bytes in
              let rec dup = function
                | a :: (b :: _ as tl) -> if a = b then Some a else dup tl
                | _ -> None
              in
              (match dup sorted with
              | Some b ->
                  add vb.pvb_loc
                    (Printf.sprintf "encode match assigns byte %d to two opcodes" b)
              | None -> ())));
      (* decode side: op_of_byte must produce every constructor *)
      match find_binding "op_of_byte" ast with
      | None -> missing "an [op_of_byte] decode match" top_loc
      | Some vb -> (
          match fn_cases vb.pvb_expr with
          | None -> add vb.pvb_loc "op_of_byte is not a single-match function"
          | Some cases ->
              let produced =
                constructors_in_exprs ~known:ctors (List.map (fun c -> c.pc_rhs) cases)
              in
              List.iter
                (fun c ->
                  if not (List.mem c produced) then
                    add vb.pvb_loc
                      (Printf.sprintf "opcode %s missing from decode match (op_of_byte)" c))
                ctors)));
  (* wire size: declared size_bytes = encoder's written span *)
  (match (find_binding "size_bytes" ast, find_binding "encode_into" ast) with
  | None, _ -> missing "a [size_bytes] wire-size constant" top_loc
  | _, None -> missing "an [encode_into] writer" top_loc
  | Some size_vb, Some enc_vb -> (
      match (int_of_const size_vb.pvb_expr, encoder_span enc_vb.pvb_expr) with
      | None, _ -> add size_vb.pvb_loc "size_bytes is not an integer literal"
      | _, None -> add enc_vb.pvb_loc "encode_into contains no analyzable Bytes.set_* write"
      | Some declared, Some span ->
          if declared <> span then
            add enc_vb.pvb_loc
              (Printf.sprintf
                 "encoder writes a %d-byte span but size_bytes declares %d" span declared)));
  !diags

(* ---- driver ------------------------------------------------------------ *)

let parse_structure ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let lint_source ~path src =
  if Filename.check_suffix path ".mli" then
    (* Interfaces carry no expressions the rules apply to; parse them only
       so a syntactically broken .mli still surfaces here. *)
    match
      let lexbuf = Lexing.from_string src in
      Lexing.set_filename lexbuf path;
      ignore (Parse.interface lexbuf)
    with
    | () -> []
    | exception _ ->
        [ { file = path; line = 1; col = 0; rule = "parse"; msg = "syntax error" } ]
  else
    match parse_structure ~path src with
    | exception _ ->
        [ { file = path; line = 1; col = 0; rule = "parse"; msg = "syntax error" } ]
    | ast ->
        let diags =
          expr_rules ~path ast
          @ (if Filename.basename path = "nqe.ml" && in_lib path then nqe_rules ~path ast
             else [])
        in
        let strlit = waiver_string_literal_lines ast in
        let waivers, w1 = scan_waivers ~path ~strlit src in
        let kept =
          List.filter
            (fun d ->
              let covering =
                List.filter
                  (fun w ->
                    w.w_rule = d.rule && (w.w_line = d.line || w.w_line = d.line - 1))
                  waivers
              in
              List.iter (fun w -> w.w_used <- true) covering;
              covering = [])
            diags
        in
        let stale =
          List.filter_map
            (fun w ->
              if w.w_used then None
              else
                Some
                  {
                    file = path;
                    line = w.w_line;
                    col = 0;
                    rule = "W1";
                    msg =
                      Printf.sprintf "stale waiver %S suppresses no %s diagnostic"
                        w.w_token w.w_rule;
                  })
            waivers
        in
        kept @ w1 @ stale |> List.sort compare_diag

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~path (read_file path)

(* ---- S1: span stage begin/end pairing ---------------------------------- *)

(* Every stage a lib/ component opens with [Nkspan.begin_stage] must be
   closed by a matching [end_stage] literal somewhere under lib/ — a begun
   stage with no closer anywhere would only ever be closed implicitly (by a
   later begin_stage or by finish), which silently reshapes the latency
   breakdown. The check is aggregated across the whole invocation (the root
   [@lint] alias runs one nklint over lib/ bin/ bench/ test/), because the
   opener and the closer legitimately live in different components:
   Nk_device opens "ring", GuestLib/CoreEngine/ServiceLib close it. *)

type stage_use = { su_file : string; su_line : int; su_stage : string }

let stage_uses_of_source ~path src =
  (* ([begin_stage] literals, [end_stage] literals) in the given source;
     syntactic, like every other rule here. *)
  match parse_structure ~path src with
  | exception _ -> ([], [])
  | ast ->
      let begins = ref [] and ends = ref [] in
      let default = Ast_iterator.default_iterator in
      let expr self e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            match last (Longident.flatten txt) with
            | Some (("begin_stage" | "end_stage") as fn) ->
                List.iter
                  (fun (label, arg) ->
                    match (label, arg.pexp_desc) with
                    | Asttypes.Nolabel, Pexp_constant (Pconst_string (s, _, _)) ->
                        let use =
                          { su_file = path; su_line = loc_line arg.pexp_loc; su_stage = s }
                        in
                        if fn = "begin_stage" then begins := use :: !begins
                        else ends := use :: !ends
                    | _ -> ())
                  args
            | _ -> ())
        | _ -> ());
        default.expr self e
      in
      let it = { default with expr } in
      it.structure it ast;
      (List.rev !begins, List.rev !ends)

let stage_uses_file path =
  if Filename.check_suffix path ".ml" && in_lib path then
    stage_uses_of_source ~path (read_file path)
  else ([], [])

let span_pairing ~begins ~ends =
  (* One diagnostic per unmatched stage literal, anchored at its first use. *)
  let stages uses =
    List.sort_uniq String.compare (List.map (fun u -> u.su_stage) uses)
  in
  let first stage uses = List.find (fun u -> String.equal u.su_stage stage) uses in
  let unmatched uses others fn other_fn =
    List.filter_map
      (fun stage ->
        if List.exists (fun u -> String.equal u.su_stage stage) others then None
        else
          let u = first stage uses in
          Some
            {
              file = u.su_file;
              line = u.su_line;
              col = 0;
              rule = "S1";
              msg =
                Printf.sprintf
                  "%s %S has no matching %s literal anywhere under lib/" fn stage
                  other_fn;
            })
      (stages uses)
  in
  List.sort compare_diag
    (unmatched begins ends "begin_stage" "end_stage"
    @ unmatched ends begins "end_stage" "begin_stage")
