(* nkscope CLI: [nkscope [--format text|json] PATH...] analyzes every .cmt
   under the given files or directories (the main dune build's typedtree
   artifacts — no second compile) and exits nonzero on any diagnostic.
   Wired into the build as part of [dune build @lint] (root dune file) and
   tools/check.sh. *)

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left (fun acc name -> walk (Filename.concat path name) acc) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let usage () =
  prerr_endline "usage: nkscope [--format text|json] PATH...";
  exit 2

let () =
  let format = ref `Text in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--format" :: fmt :: rest ->
        (match fmt with
        | "text" -> format := `Text
        | "json" -> format := `Json
        | _ -> usage ());
        parse rest
    | "--format" :: [] -> usage ()
    | arg :: rest ->
        roots := arg :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !roots = [] then usage ();
  let files = List.rev (List.fold_left (fun acc r -> walk r acc) [] (List.rev !roots)) in
  let units = List.filter_map Nkscope_core.unit_of_cmt files in
  let diags = Nkscope_core.analyze units in
  (match !format with
  | `Text -> List.iter (fun d -> print_endline (Nkscope_core.to_string d)) diags
  | `Json -> print_endline (Nkscope_core.to_json_array diags));
  Printf.eprintf "nkscope: %d units analyzed, %d diagnostic%s\n%!" (List.length units)
    (List.length diags)
    (if List.length diags = 1 then "" else "s");
  exit (if diags = [] then 0 else 1)
