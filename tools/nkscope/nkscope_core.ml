(* nkscope — typedtree-based interprocedural analyzer (DESIGN.md §15).

   Where nklint (tools/nklint) is a purely syntactic parsetree pass over one
   file at a time, nkscope loads the *typedtrees* the main dune build already
   produced (.cmt files), links them into an interprocedural call graph, and
   enforces discipline that no single-function syntactic check can see:

   O1  shard-ownership: CoreEngine's shared tables (conn_table, nsm_conns,
       assignment, buckets) may be written directly from shard context only
       on paths that charge the cross-shard cost — i.e. the writer reads
       [Nk_costs.ce_xshard] itself or reaches a function that does
       (charge_xshard, via the table_add/table_remove accessors). Control
       verbs running on no CE core are exempt (they never execute in shard
       context). Waiver for a deliberate owner-shard accessor:
       (* nkscope: ce-owner *).
   M1  migration snapshot completeness: in a unit with top-level [snapshot]
       and [restore] over a record [t], every mutable or stateful slot
       reachable from [t] must be read by [snapshot] and written by
       [restore]; in a CC module (a unit constructing a record with
       [export]/[import] closures), every mutable field of the local state
       record must be covered by both closures. Fields legitimately rebuilt
       at the destination carry (* nkscope: volatile *).
   T1  transitive determinism taint: taint seeded at wall-clock / ambient
       Random references propagates over the call graph (any mention of a
       function, including as a value, taints the mentioner), so a lib/
       function reaching Unix.gettimeofday through helper chains is flagged
       even though nklint's D1 only sees the direct call site. Waiver:
       (* nkscope: nondet-ok *).
   W1  a nkscope waiver comment that suppresses nothing, or an unknown
       nkscope token, is itself reported so waivers cannot rot. Tokens
       inside string literals (lint-test fixtures) are exempt.

   Approximations, chosen deliberately: call edges are resolved by
   (module, value) name after normalizing dune wrapper prefixes
   ([Nkcore__Coreengine] -> [Coreengine]), one level of local
   [module X = Path] aliases, and a leading [Stdlib.]. An alias chain that
   crosses another unit can drop an edge, and same-named modules in two
   libraries link to every candidate. Both err on the side the rules
   tolerate: a dropped edge loses at most a diagnostic the syntactic D1
   rule still catches at the direct site, and a duplicate edge only widens
   taint/legality conservatively. *)

open Typedtree

type diag = { file : string; line : int; col : int; rule : string; msg : string }

let to_string d = Printf.sprintf "%s:%d: %s: %s" d.file d.line d.rule d.msg

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"msg\":\"%s\"}"
    (json_escape d.file) d.line d.col (json_escape d.rule) (json_escape d.msg)

let to_json_array diags =
  "[" ^ String.concat ",\n " (List.map to_json diags) ^ "]"

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let loc_line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
let loc_end_line (loc : Location.t) = loc.Location.loc_end.Lexing.pos_lnum

let loc_col (loc : Location.t) =
  loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol

let in_lib file =
  (String.length file >= 4 && String.sub file 0 4 = "lib/") || contains ~sub:"/lib/" file

(* ---- name normalization ------------------------------------------------ *)

(* [Nkcore__Coreengine] -> [Coreengine]: dune wrapper-prefixed unit names. *)
let after_dunder s =
  let n = String.length s in
  let rec find i best =
    if i + 1 >= n then best
    else if s.[i] = '_' && s.[i + 1] = '_' then find (i + 2) (Some (i + 2))
    else find (i + 1) best
  in
  match find 0 None with Some i when i < n -> String.sub s i (n - i) | _ -> s

let split_path s = List.map after_dunder (String.split_on_char '.' s)

let strip_stdlib = function "Stdlib" :: (_ :: _ as tl) -> tl | l -> l

(* ---- per-function / per-unit facts ------------------------------------- *)

type func = {
  f_unit : string;
  f_file : string;
  f_name : string;
  f_line : int;
  f_col : int;
  f_in_lib : bool;
  mutable f_id : int;
  mutable f_refs : string list list; (* normalized components of every ident use *)
  mutable f_field_reads : string list;
  mutable f_field_writes : string list; (* setfield targets + record-construction labels *)
  mutable f_table_writes : (string * int * int) list; (* shared-table label, line, col *)
  mutable f_shard_param : bool;
}

type type_field = { tf_name : string; tf_mut : bool; tf_type : core_type; tf_line : int }

type type_decl = {
  td_name : string;
  td_fields : type_field list; (* record labels; [] for variants/aliases *)
  td_args : core_type list; (* variant constructor args + alias manifest *)
}

type unit_info = {
  u_name : string;
  u_file : string;
  u_src : string; (* "" when the source text is unavailable *)
  u_in_lib : bool;
  u_funcs : func list;
  u_types : type_decl list;
  u_exports : (expression * expression) option; (* (export, import) closures *)
  u_strlits : (int * int) list; (* line ranges of waiver-bearing string literals *)
}

(* ---- typedtree extraction ---------------------------------------------- *)

let shared_tables = [ "conn_table"; "nsm_conns"; "assignment"; "buckets" ]

let hashtbl_mutators =
  [ "replace"; "remove"; "add"; "reset"; "clear"; "filter_map_inplace" ]

(* Does a parameter's inferred type mention the [shard] record anywhere
   outside an arrow (a callback taking a shard does not put its taker in
   shard context)? *)
let type_mentions_shard ty =
  let rec go visited ty =
    let id = Types.get_id ty in
    if List.mem id visited then false
    else
      let visited = id :: visited in
      match Types.get_desc ty with
      | Types.Tconstr (p, args, _) ->
          Path.last p = "shard" || List.exists (go visited) args
      | Types.Ttuple l -> List.exists (go visited) l
      | Types.Tpoly (t, _) -> go visited t
      | _ -> false
  in
  go [] ty

(* Walk the curried-lambda spine of a binding, checking every parameter. *)
let rec spine_has_shard_param e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.exists (fun c -> type_mentions_shard c.c_lhs.pat_type) cases
      || (match cases with [ { c_rhs; _ } ] -> spine_has_shard_param c_rhs | _ -> false)
  | _ -> false

let unit_of_structure ~file ~src ~name (str : structure) =
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  (* Pass 1: local [module X = Path] aliases, collected up front so
     references through them resolve regardless of declaration order. *)
  let rec alias_pass items =
    List.iter
      (fun it ->
        match it.str_desc with
        | Tstr_module mb -> (
            match (mb.mb_name.Asttypes.txt, mb.mb_expr.mod_desc) with
            | Some n, Tmod_ident (p, _) ->
                Hashtbl.replace aliases n (split_path (Path.name p))
            | _, Tmod_structure s -> alias_pass s.str_items
            | _, Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
                alias_pass s.str_items
            | _ -> ())
        | _ -> ())
      items
  in
  alias_pass str.str_items;
  let normalize path =
    let comps = split_path (Path.name path) in
    let comps =
      match comps with
      | hd :: tl -> (
          match Hashtbl.find_opt aliases hd with
          | Some full -> full @ tl
          | None -> comps)
      | [] -> []
    in
    strip_stdlib comps
  in
  let funcs = ref [] in
  let types = ref [] in
  let exports = ref None in
  let strlits = ref [] in
  let scan_expr (f : func) e0 =
    let default = Tast_iterator.default_iterator in
    let expr self e =
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> f.f_refs <- normalize p :: f.f_refs
      | Texp_field (_, _, ld) -> f.f_field_reads <- ld.Types.lbl_name :: f.f_field_reads
      | Texp_setfield (_, _, ld, _) ->
          f.f_field_writes <- ld.Types.lbl_name :: f.f_field_writes
      | Texp_constant (Asttypes.Const_string (s, _, _))
        when contains ~sub:"nkscope:" s || contains ~sub:"nklint:" s ->
          strlits := (loc_line e.exp_loc, loc_end_line e.exp_loc) :: !strlits
      | Texp_record { fields; _ } ->
          let labels =
            Array.to_list fields
            |> List.filter_map (fun (ld, def) ->
                   match def with
                   | Overridden (_, fe) -> Some (ld.Types.lbl_name, fe)
                   | Kept _ -> None)
          in
          List.iter
            (fun (l, _) -> f.f_field_writes <- l :: f.f_field_writes)
            labels;
          if !exports = None then (
            match (List.assoc_opt "export" labels, List.assoc_opt "import" labels) with
            | Some ex, Some im -> exports := Some (ex, im)
            | _ -> ())
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
          match normalize p with
          | [ "Hashtbl"; m ] when List.mem m hashtbl_mutators -> (
              let first_pos =
                List.find_map
                  (fun (lbl, a) ->
                    match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
                  args
              in
              match first_pos with
              | Some { exp_desc = Texp_field (_, _, ld); exp_loc; _ }
                when List.mem ld.Types.lbl_name shared_tables ->
                  f.f_table_writes <-
                    (ld.Types.lbl_name, loc_line exp_loc, loc_col exp_loc)
                    :: f.f_table_writes
              | _ -> ())
          | _ -> ())
      | _ -> ());
      default.expr self e
    in
    let it = { default with expr } in
    it.expr it e0
  in
  let add_func fname loc expr =
    let f =
      {
        f_unit = name;
        f_file = file;
        f_name = fname;
        f_line = loc_line loc;
        f_col = loc_col loc;
        f_in_lib = in_lib file;
        f_id = -1;
        f_refs = [];
        f_field_reads = [];
        f_field_writes = [];
        f_table_writes = [];
        f_shard_param = spine_has_shard_param expr;
      }
    in
    scan_expr f expr;
    funcs := f :: !funcs
  in
  let add_type (d : type_declaration) =
    let fields_of lds =
      List.map
        (fun ld ->
          {
            tf_name = ld.ld_name.Asttypes.txt;
            tf_mut = ld.ld_mutable = Asttypes.Mutable;
            tf_type = ld.ld_type;
            tf_line = loc_line ld.ld_loc;
          })
        lds
    in
    let td =
      match d.typ_kind with
      | Ttype_record lds ->
          { td_name = d.typ_name.Asttypes.txt; td_fields = fields_of lds; td_args = [] }
      | Ttype_variant ctors ->
          let args =
            List.concat_map
              (fun c ->
                match c.cd_args with
                | Cstr_tuple l -> l
                | Cstr_record lds -> List.map (fun ld -> ld.ld_type) lds)
              ctors
          in
          { td_name = d.typ_name.Asttypes.txt; td_fields = []; td_args = args }
      | _ ->
          {
            td_name = d.typ_name.Asttypes.txt;
            td_fields = [];
            td_args = (match d.typ_manifest with Some t -> [ t ] | None -> []);
          }
    in
    types := td :: !types
  in
  let rec item_pass items =
    List.iter
      (fun it ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (_, n) -> add_func n.Asttypes.txt vb.vb_pat.pat_loc vb.vb_expr
                | _ -> ())
              vbs
        | Tstr_type (_, decls) -> List.iter add_type decls
        | Tstr_module mb -> (
            match mb.mb_expr.mod_desc with
            | Tmod_structure s -> item_pass s.str_items
            | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
                item_pass s.str_items
            | _ -> ())
        | _ -> ())
      items
  in
  item_pass str.str_items;
  {
    u_name = name;
    u_file = file;
    u_src = src;
    u_in_lib = in_lib file;
    u_funcs = List.rev !funcs;
    u_types = List.rev !types;
    u_exports = !exports;
    u_strlits = !strlits;
  }

(* ---- waivers ----------------------------------------------------------- *)

let waiver_tokens =
  [ ("nkscope: volatile", "M1"); ("nkscope: ce-owner", "O1"); ("nkscope: nondet-ok", "T1") ]

type waiver = { w_line : int; w_rule : string; w_token : string; mutable w_used : bool }

let token_word line marker =
  (* The word following [marker] on [line], or "" — used to catch unknown
     waiver tokens like (* nkscope: volatil *). *)
  let n = String.length line and m = String.length marker in
  let rec find i = if i + m > n then None else if String.sub line i m = marker then Some (i + m) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some i ->
      let i = ref i in
      while !i < n && line.[!i] = ' ' do incr i done;
      let j = ref !i in
      while
        !j < n
        && (match line.[!j] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
      do
        incr j
      done;
      Some (String.sub line !i (!j - !i))

let scan_waivers u =
  (* (known waivers, W1 diags for unknown tokens). Lines inside
     waiver-bearing string literals are fixture text, not waivers. *)
  let in_strlit line =
    List.exists (fun (a, b) -> line >= a && line <= b) u.u_strlits
  in
  let waivers = ref [] and unknown = ref [] in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      if (not (in_strlit lnum)) && contains ~sub:"nkscope:" line then
        match token_word line "nkscope:" with
        | None | Some "" -> ()
        | Some word ->
            let token = "nkscope: " ^ word in
            (match List.assoc_opt token waiver_tokens with
            | Some rule ->
                waivers := { w_line = lnum; w_rule = rule; w_token = token; w_used = false } :: !waivers
            | None ->
                unknown :=
                  {
                    file = u.u_file;
                    line = lnum;
                    col = 0;
                    rule = "W1";
                    msg = Printf.sprintf "unknown nkscope waiver token %S" token;
                  }
                  :: !unknown))
    (String.split_on_char '\n' u.u_src);
  (List.rev !waivers, List.rev !unknown)

(* ---- M1: snapshot / export completeness -------------------------------- *)

let builtin_mutable =
  [ "Queue.t"; "Hashtbl.t"; "Buffer.t"; "Bytes.t"; "bytes"; "ref"; "array"; "Atomic.t"; "Stack.t" ]

let builtin_immutable =
  [ "int"; "float"; "bool"; "char"; "string"; "unit"; "int32"; "int64"; "nativeint";
    "Int32.t"; "Int64.t"; "String.t" ]

let transparent = [ "option"; "list"; "Option.t"; "List.t" ]

let find_decl u n = List.find_opt (fun td -> td.td_name = n) u.u_types

(* A type is "stateful" if a value of it can carry mutable state the
   migration snapshot would have to move: a builtin mutable container, a
   local type with (transitively) mutable content, or — conservatively —
   any abstract type from another module. Arrows are opaque and stateless
   (closures are rebuilt, not moved). *)
let ty_stateful u ct =
  let rec go visited ct =
    match ct.ctyp_desc with
    | Ttyp_arrow _ -> false
    | Ttyp_tuple l -> List.exists (go visited) l
    | Ttyp_poly (_, t) -> go visited t
    | Ttyp_constr (p, _, args) ->
        let pname = String.concat "." (strip_stdlib (split_path (Path.name p))) in
        if List.mem pname builtin_mutable then true
        else if List.mem pname builtin_immutable then false
        else if List.mem pname transparent then List.exists (go visited) args
        else if String.contains (Path.name p) '.' then true (* external abstract *)
        else (
          match find_decl u (Path.last p) with
          | Some td when not (List.mem td.td_name visited) ->
              let visited = td.td_name :: visited in
              List.exists (fun tf -> tf.tf_mut || go visited tf.tf_type) td.td_fields
              || List.exists (go visited) td.td_args
          | Some _ -> false
          | None -> true)
    | _ -> false
  in
  go [] ct

(* Local record decls reachable from [td]'s fields through local types
   (skipping arrows): their mutable fields are migration slots too
   (e.g. tcb's [retx_item] inside [retxq : retx_item Queue.t]). *)
let reachable_records u td0 =
  let reached = ref [] in
  let rec walk_ty ct =
    match ct.ctyp_desc with
    | Ttyp_arrow _ -> ()
    | Ttyp_tuple l -> List.iter walk_ty l
    | Ttyp_poly (_, t) -> walk_ty t
    | Ttyp_constr (p, _, args) ->
        List.iter walk_ty args;
        if not (String.contains (Path.name p) '.') then (
          match find_decl u (Path.last p) with
          | Some td when not (List.exists (fun r -> r.td_name = td.td_name) !reached) ->
              reached := td :: !reached;
              List.iter (fun tf -> walk_ty tf.tf_type) td.td_fields;
              List.iter walk_ty td.td_args
          | _ -> ())
    | _ -> ()
  in
  List.iter (fun tf -> walk_ty tf.tf_type) td0.td_fields;
  List.filter (fun td -> td.td_name <> td0.td_name && td.td_fields <> []) !reached

(* Field reads/writes of [roots] plus every same-unit function they reach
   (snapshot/restore may delegate to helpers like [arm_rto]). *)
let unit_closure u roots =
  let local f = List.filter (fun g -> g.f_name = f) u.u_funcs in
  let seen = ref [] in
  let rec visit f =
    if not (List.memq f !seen) then (
      seen := f :: !seen;
      List.iter
        (fun comps ->
          match comps with [ x ] -> List.iter visit (local x) | _ -> ())
        f.f_refs)
  in
  List.iter visit roots;
  !seen

let m1_unit u =
  let diags = ref [] in
  let add line name what where =
    diags :=
      {
        file = u.u_file;
        line;
        col = 0;
        rule = "M1";
        msg =
          Printf.sprintf
            "%s holds mutable state but is not %s by %s — migration would silently drop \
             it; cover it or waive a rebuilt-at-destination field with (* nkscope: \
             volatile *)"
            name what where;
      }
      :: !diags
  in
  (* Mode A: top-level snapshot/restore over record [t]. *)
  (match
     ( find_decl u "t",
       List.filter (fun f -> f.f_name = "snapshot") u.u_funcs,
       List.filter (fun f -> f.f_name = "restore") u.u_funcs )
   with
  | Some trec, (_ :: _ as snaps), (_ :: _ as rests) when trec.td_fields <> [] ->
      let reads =
        List.concat_map (fun f -> f.f_field_reads) (unit_closure u snaps)
      in
      let writes =
        List.concat_map (fun f -> f.f_field_writes) (unit_closure u rests)
      in
      let check rec_name tf =
        if not (List.mem tf.tf_name reads) then
          add tf.tf_line (rec_name ^ "." ^ tf.tf_name) "read" "[snapshot]";
        if not (List.mem tf.tf_name writes) then
          add tf.tf_line (rec_name ^ "." ^ tf.tf_name) "written" "[restore]"
      in
      List.iter
        (fun tf -> if tf.tf_mut || ty_stateful u tf.tf_type then check "t" tf)
        trec.td_fields;
      List.iter
        (fun td ->
          List.iter (fun tf -> if tf.tf_mut then check td.td_name tf) td.td_fields)
        (reachable_records u trec)
  | _ -> ());
  (* Mode B: CC-style export/import closures over local state records. *)
  (match u.u_exports with
  | Some (ex, im) ->
      let probe =
        {
          f_unit = u.u_name; f_file = u.u_file; f_name = "(export)"; f_line = 0; f_col = 0;
          f_in_lib = u.u_in_lib; f_id = -1; f_refs = []; f_field_reads = [];
          f_field_writes = []; f_table_writes = []; f_shard_param = false;
        }
      in
      let collect e =
        let f = { probe with f_refs = []; f_field_reads = []; f_field_writes = [] } in
        let default = Tast_iterator.default_iterator in
        let expr self e =
          (match e.exp_desc with
          | Texp_field (_, _, ld) -> f.f_field_reads <- ld.Types.lbl_name :: f.f_field_reads
          | Texp_setfield (_, _, ld, _) ->
              f.f_field_writes <- ld.Types.lbl_name :: f.f_field_writes
          | _ -> ());
          default.expr self e
        in
        let it = { default with expr } in
        it.expr it e;
        f
      in
      let er = (collect ex).f_field_reads in
      let iw = (collect im).f_field_writes in
      List.iter
        (fun td ->
          if td.td_name <> "t" then
            List.iter
              (fun tf ->
                if tf.tf_mut then (
                  if not (List.mem tf.tf_name er) then
                    add tf.tf_line (td.td_name ^ "." ^ tf.tf_name) "read" "the [export] closure";
                  if not (List.mem tf.tf_name iw) then
                    add tf.tf_line (td.td_name ^ "." ^ tf.tf_name) "written" "the [import] closure"))
              td.td_fields)
        (List.filter (fun td -> td.td_fields <> []) u.u_types)
  | None -> ());
  List.rev !diags

(* ---- O1 / T1: interprocedural graph rules ------------------------------ *)

let taint_source comps =
  match comps with
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
      Some (String.concat "." comps)
  | "Random" :: _ :: _ -> Some (String.concat "." comps)
  | _ -> None

let graph_diags units =
  let funcs = Array.of_list (List.concat_map (fun u -> u.u_funcs) units) in
  let n = Array.length funcs in
  Array.iteri (fun i f -> f.f_id <- i) funcs;
  let index : (string * string, int list) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i f ->
      let key = (f.f_unit, f.f_name) in
      Hashtbl.replace index key (i :: (try Hashtbl.find index key with Not_found -> [])))
    funcs;
  let resolve f comps =
    let rec last2 = function
      | [ m; x ] -> Some (m, x)
      | _ :: tl -> last2 tl
      | [] -> None
    in
    let key =
      match comps with [ x ] -> Some (f.f_unit, x) | l -> last2 l
    in
    match key with
    | None -> []
    | Some k -> ( try Hashtbl.find index k with Not_found -> [])
  in
  let succs = Array.make n [] and preds = Array.make n [] in
  Array.iteri
    (fun i f ->
      let out =
        List.sort_uniq Int.compare (List.concat_map (resolve f) f.f_refs)
      in
      let out = List.filter (fun j -> j <> i) out in
      succs.(i) <- out;
      List.iter (fun j -> preds.(j) <- i :: preds.(j)) out)
    funcs;
  let propagate seeds edges =
    let mark = Array.make n false in
    let q = Queue.create () in
    List.iter
      (fun i ->
        if not mark.(i) then (
          mark.(i) <- true;
          Queue.add i q))
      seeds;
    while not (Queue.is_empty q) do
      let i = Queue.pop q in
      List.iter
        (fun j ->
          if not mark.(j) then (
            mark.(j) <- true;
            Queue.add j q))
        edges.(i)
    done;
    mark
  in
  let ids p =
    Array.to_list funcs |> List.filter p |> List.map (fun f -> f.f_id)
  in
  (* O1: shard context flows caller -> callee from shard-parameter functions;
     cross-shard legality flows callee -> caller from ce_xshard readers. *)
  let shard_ctx = propagate (ids (fun f -> f.f_shard_param)) succs in
  let xshard =
    propagate (ids (fun f -> List.mem "ce_xshard" f.f_field_reads)) preds
  in
  let o1 =
    Array.to_list funcs
    |> List.concat_map (fun f ->
           if f.f_table_writes <> [] && shard_ctx.(f.f_id) && not xshard.(f.f_id) then
             List.rev_map
               (fun (label, line, col) ->
                 {
                   file = f.f_file;
                   line;
                   col;
                   rule = "O1";
                   msg =
                     Printf.sprintf
                       "direct write to shared table [%s] in [%s], which runs in shard \
                        context but never charges Nk_costs.ce_xshard — route it through \
                        the table accessors, or waive a deliberate owner-shard accessor \
                        with (* nkscope: ce-owner *)"
                       label f.f_name;
                 })
               f.f_table_writes
           else [])
  in
  (* T1: BFS from direct nondeterminism references backwards to callers,
     recording a shortest witness chain per function. *)
  let via = Array.make n None in
  let q = Queue.create () in
  Array.iter
    (fun f ->
      match List.find_map taint_source f.f_refs with
      | Some src when via.(f.f_id) = None ->
          via.(f.f_id) <- Some src;
          Queue.add f.f_id q
      | _ -> ())
    funcs;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    let chain =
      match via.(i) with Some c -> funcs.(i).f_name ^ " -> " ^ c | None -> assert false
    in
    List.iter
      (fun j ->
        if via.(j) = None then (
          via.(j) <- Some chain;
          Queue.add j q))
      preds.(i)
  done;
  let t1 =
    Array.to_list funcs
    |> List.filter_map (fun f ->
           match via.(f.f_id) with
           | Some chain when f.f_in_lib ->
               Some
                 {
                   file = f.f_file;
                   line = f.f_line;
                   col = f.f_col;
                   rule = "T1";
                   msg =
                     Printf.sprintf
                       "[%s] reaches a nondeterminism source (%s) — take time from \
                        Sim.Engine / randomness from Nkutil.Rng, or waive with (* \
                        nkscope: nondet-ok *)"
                       f.f_name chain;
                 }
           | _ -> None)
  in
  o1 @ t1

(* ---- driver ------------------------------------------------------------ *)

let analyze units =
  let pre =
    graph_diags units @ List.concat_map m1_unit (List.filter (fun u -> u.u_in_lib) units)
  in
  let per_unit = List.map (fun u -> (u.u_file, scan_waivers u)) units in
  let kept =
    List.filter
      (fun d ->
        match List.assoc_opt d.file per_unit with
        | None -> true
        | Some (waivers, _) ->
            let covering =
              List.filter
                (fun w -> w.w_rule = d.rule && (w.w_line = d.line || w.w_line = d.line - 1))
                waivers
            in
            List.iter (fun w -> w.w_used <- true) covering;
            covering = [])
      pre
  in
  let w1 =
    List.concat_map
      (fun (file, (waivers, unknown)) ->
        unknown
        @ List.filter_map
            (fun w ->
              if w.w_used then None
              else
                Some
                  {
                    file;
                    line = w.w_line;
                    col = 0;
                    rule = "W1";
                    msg =
                      Printf.sprintf "stale waiver %S suppresses no %s diagnostic"
                        w.w_token w.w_rule;
                  })
            waivers)
      per_unit
  in
  List.sort compare_diag (kept @ w1)

(* ---- cmt loading ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let unit_of_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | ci -> (
      match ci.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let name = after_dunder ci.Cmt_format.cmt_modname in
          let file =
            match ci.Cmt_format.cmt_sourcefile with Some f -> f | None -> path
          in
          (* cmt_builddir can be stale (dune sanitizes it), so resolve the
             source cwd-relative first and fall back to the recorded dir. *)
          let src =
            if Sys.file_exists file then read_file file
            else
              let alt = Filename.concat ci.Cmt_format.cmt_builddir file in
              if Sys.file_exists alt then read_file alt else ""
          in
          Some (unit_of_structure ~file ~src ~name str)
      | _ -> None)
